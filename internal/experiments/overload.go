package experiments

import (
	"context"
	"fmt"
	"sort"

	"nimblock/internal/admit"
	"nimblock/internal/cluster"
	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/obs"
	"nimblock/internal/report"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// OverloadMultipliers are the offered-load operating points as multiples
// of the computed saturation arrival rate: from comfortable (0.5x)
// through saturation (1x) to deep overload (4x).
var OverloadMultipliers = []float64{0.5, 1, 2, 4}

// overloadBoards is the cluster size the overload study runs on.
const overloadBoards = 2

// overloadBatchCap caps drawn batch sizes so offered work scales with
// the arrival rate rather than a heavy tail of giant batches.
const overloadBatchCap = 8

// overloadPool excludes DigitRecognition: a single arrival of it
// saturates any rate on its own.
var overloadPool = []string{"LeNet", "ImageCompression", "3DRendering", "OpticalFlow", "AlexNet"}

// OverloadPoint aggregates one operating point of the sweep.
type OverloadPoint struct {
	// Multiplier and Rate describe the offered load (Rate in apps/s).
	Multiplier float64
	Rate       float64
	// Admission accounting summed over every sequence at this point.
	// Shed includes Evicted (admitted first, displaced later), so
	// Admitted - Evicted + Shed == Offered.
	Offered  int
	Admitted int
	Shed     int
	Evicted  int
	// Admitted-traffic latency (seconds).
	MeanResponse float64
	P99Response  float64
}

// OverloadResult holds the graceful-degradation sweep: a bounded
// admission queue in front of a two-board cluster, offered Poisson
// arrivals from half to four times the saturation rate. Past saturation
// the shed count absorbs the excess while admitted-traffic latency stays
// bounded — without admission the backlog (and every response time)
// would grow with the arrival rate instead.
type OverloadResult struct {
	Boards   int
	Capacity int
	// BaseRate is the computed saturation arrival rate (apps/s): the
	// cluster's aggregate slots divided by the pool's mean single-slot
	// latency at the mean generated batch.
	BaseRate float64
	Points   []*OverloadPoint
}

// overloadAdmission is the controller configuration the study uses:
// enough queue for a short burst, a dispatch window matching the
// cluster's parallelism, shedding beyond it.
func overloadAdmission(reg *obs.Registry) *admit.Config {
	return &admit.Config{
		Capacity:    3 * overloadBoards,
		MaxInFlight: 2 * overloadBoards,
		Registry:    reg,
	}
}

// overloadBaseRate estimates the saturation arrival rate: boards x slots
// single-slot servers draining the pool's mean job.
func overloadBaseRate(cfg Config) float64 {
	mean := 0.0
	meanBatch := (1 + overloadBatchCap) / 2
	for _, name := range overloadPool {
		mean += cachedSingleSlot(cfg.HV.Board, name, meanBatch).Seconds()
	}
	mean /= float64(len(overloadPool))
	return float64(overloadBoards*cfg.HV.Board.Slots) / mean
}

// overloadRun is one sequence replayed against one admission-fronted
// cluster.
type overloadRun struct {
	responses []float64
	stats     admit.Stats
}

// Overload sweeps Poisson arrival rate past saturation and measures how
// the admission-fronted cluster degrades. reg, when non-nil, receives
// the live admit_* counters/gauges from every run (the -serve
// side-channel); pass nil when only the returned aggregates matter.
func Overload(cfg Config, reg *obs.Registry) (*OverloadResult, error) {
	base := overloadBaseRate(cfg)
	type job = func(context.Context) (overloadRun, error)
	var jobs []job
	for _, m := range OverloadMultipliers {
		rate := base * m
		for s := 0; s < cfg.Sequences; s++ {
			// Same per-sequence seed at every multiplier: the generator
			// draws jobs and gaps from one stream, so each operating point
			// replays the identical job mix with arrival gaps compressed by
			// the rate — the sweep isolates the rate effect.
			seed := cfg.Seed + int64(s)*1_000_003
			jobs = append(jobs, func(context.Context) (overloadRun, error) {
				return runOverloadOnce(cfg, rate, seed, reg)
			})
		}
	}
	runs, err := runJobs(cfg.workers(), jobs)
	if err != nil {
		return nil, fmt.Errorf("overload: %w", err)
	}
	out := &OverloadResult{
		Boards:   overloadBoards,
		Capacity: overloadAdmission(nil).Capacity,
		BaseRate: base,
	}
	for mi, m := range OverloadMultipliers {
		pt := &OverloadPoint{Multiplier: m, Rate: base * m}
		var responses []float64
		for s := 0; s < cfg.Sequences; s++ {
			r := runs[mi*cfg.Sequences+s]
			responses = append(responses, r.responses...)
			pt.Offered += r.stats.Offered
			pt.Admitted += r.stats.Admitted
			pt.Shed += r.stats.Shed
			pt.Evicted += r.stats.Evicted
		}
		sort.Float64s(responses)
		pt.MeanResponse = metrics.Mean(responses)
		pt.P99Response = metrics.Percentile(responses, 99)
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// runOverloadOnce drives one generated sequence through a fresh
// admission-fronted cluster and collects admitted-traffic responses.
func runOverloadOnce(cfg Config, rate float64, seed int64, reg *obs.Registry) (overloadRun, error) {
	seq := workload.Generate(workload.Spec{
		Events:      cfg.Events,
		PoissonRate: rate,
		BatchCap:    overloadBatchCap,
		Pool:        overloadPool,
	}, seed)
	eng := sim.NewEngine()
	defer countEvents(eng)
	hcfg := cfg.HV
	if cfg.NewObserver != nil {
		hcfg.Observer = obs.Tee(hcfg.Observer, cfg.NewObserver())
	}
	var mkErr error
	cl, err := cluster.New(eng, cluster.Config{
		Boards:    overloadBoards,
		HV:        hcfg,
		Dispatch:  cluster.LeastLoaded,
		Admission: overloadAdmission(reg),
	}, func(board hv.Config) sched.Scheduler {
		pol, err := NewPolicy("Nimblock", board.Board)
		if err != nil && mkErr == nil {
			mkErr = err
		}
		return pol
	})
	if err != nil {
		return overloadRun{}, err
	}
	if mkErr != nil {
		return overloadRun{}, mkErr
	}
	for _, ev := range seq {
		if err := cl.Submit(cachedGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
			return overloadRun{}, err
		}
	}
	results, err := cl.Run()
	if err != nil {
		return overloadRun{}, err
	}
	var run overloadRun
	for _, r := range results {
		if !r.Rejected {
			run.responses = append(run.responses, r.Response.Seconds())
		}
	}
	run.stats = cl.AdmissionStats()
	return run, nil
}

// Render prints the sweep.
func (r *OverloadResult) Render() string {
	t := &report.Table{
		Title: fmt.Sprintf(
			"Overload sweep: %d boards, admission capacity %d, saturation ~%s apps/s",
			r.Boards, r.Capacity, report.FormatFloat(r.BaseRate)),
		Header: []string{"Load", "Rate", "Offered", "Admitted", "Shed", "Mean resp", "p99 resp"},
	}
	for _, pt := range r.Points {
		t.AddRow(
			fmt.Sprintf("%gx", pt.Multiplier),
			report.FormatFloat(pt.Rate),
			pt.Offered,
			pt.Admitted,
			pt.Shed,
			report.FormatSeconds(pt.MeanResponse),
			report.FormatSeconds(pt.P99Response),
		)
	}
	return t.Render()
}
