package experiments

import (
	"strings"
	"testing"

	"nimblock/internal/obs"
)

func runFleetQuick(t *testing.T, reg *obs.Registry) *FleetResult {
	t.Helper()
	r, err := Fleet(QuickConfig(), reg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Every scale cell must be fully populated: boards and rate scaled by
// the cell's factor, every arrival accounted for, and a positive
// latency tail at least as large as the mean.
func TestFleetCellShape(t *testing.T) {
	cfg := QuickConfig()
	r := runFleetQuick(t, nil)
	if len(r.Cells) != len(fleetQuickScales) {
		t.Fatalf("%d cells, want %d", len(r.Cells), len(fleetQuickScales))
	}
	for i, c := range r.Cells {
		scale := fleetQuickScales[i]
		if c.Scale != scale || c.Boards != fleetBaseBoards*scale {
			t.Errorf("cell %d: scale %d boards %d, want %d and %d", i, c.Scale, c.Boards, scale, fleetBaseBoards*scale)
		}
		if c.Shards < 1 || c.Shards > fleetShardCap || c.Shards > c.Boards {
			t.Errorf("cell %d: %d shards for %d boards", i, c.Shards, c.Boards)
		}
		if want := cfg.Sequences * cfg.Events * scale; c.Arrivals != want {
			t.Errorf("cell %d: %d arrivals, want %d", i, c.Arrivals, want)
		}
		if c.Done+c.Shed != c.Arrivals {
			t.Errorf("cell %d: %d done + %d shed != %d arrivals", i, c.Done, c.Shed, c.Arrivals)
		}
		if c.Done == 0 || c.MeanResponse <= 0 || c.P99Response < c.MeanResponse {
			t.Errorf("cell %d: done %d responses mean %v p99 %v", i, c.Done, c.MeanResponse, c.P99Response)
		}
		if c.EventsFired <= 0 || c.Epochs <= 0 || c.Makespan <= 0 {
			t.Errorf("cell %d: degenerate run %+v", i, c)
		}
	}
	// The scale axis multiplies offered work: events fired must grow with
	// the fleet.
	if last := r.Cells[len(r.Cells)-1]; last.EventsFired <= r.Cells[0].EventsFired {
		t.Errorf("events fired did not grow with scale: %d then %d", r.Cells[0].EventsFired, last.EventsFired)
	}
}

func TestFleetRender(t *testing.T) {
	text := runFleetQuick(t, nil).Render()
	for _, want := range []string{"Fleet scale-up", "Boards", "p99 resp", "1x"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

// The largest cell publishes its per-shard instruments to the supplied
// registry (the -serve path).
func TestFleetPublishesObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	runFleetQuick(t, reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"fleet_submitted_total", "fleet_shard0_submitted_total", "fleet_epoch_seconds"} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %s:\n%s", want, text)
		}
	}
}
