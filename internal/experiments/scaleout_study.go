package experiments

import (
	"context"
	"fmt"

	"nimblock/internal/cluster"
	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/report"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// ScaleOutBoards is the cluster-size sweep.
var ScaleOutBoards = []int{1, 2, 4, 8}

// scaleOutDispatches compared in the study.
var scaleOutDispatches = []cluster.Dispatch{
	cluster.RoundRobin, cluster.LeastLoaded, cluster.LeastPending, cluster.RandomBoard,
}

// ScaleOutResult quantifies multi-FPGA scale-out — the virtualization
// property the paper's introduction lists but leaves to future work.
type ScaleOutResult struct {
	// MeanResponse maps boards -> dispatch -> mean response seconds of a
	// stress-scenario burst under Nimblock per board.
	MeanResponse map[int]map[cluster.Dispatch]float64
}

// ScaleOut sweeps cluster sizes and dispatch policies over the stress
// stimulus. Every (cluster size, dispatch, sequence) cluster simulation
// is independent and fans across the worker pool; per-cell responses are
// reassembled in sequence order so the means are byte-identical to the
// serial path.
func ScaleOut(cfg Config) (*ScaleOutResult, error) {
	seqs := workload.GenerateTest(workload.Spec{Scenario: workload.Stress, Events: cfg.Events}, cfg.Seed)
	if cfg.Sequences < len(seqs) {
		seqs = seqs[:cfg.Sequences]
	}
	var jobs []func(context.Context) ([]float64, error)
	for _, boards := range ScaleOutBoards {
		boards := boards
		for _, d := range scaleOutDispatches {
			d := d
			for si, seq := range seqs {
				si, seq := si, seq
				jobs = append(jobs, func(context.Context) ([]float64, error) {
					eng := sim.NewEngine()
					defer countEvents(eng)
					ccfg := cluster.Config{Boards: boards, HV: cfg.HV, Dispatch: d, Seed: cfg.Seed}
					cl, err := cluster.New(eng, ccfg, func(b hv.Config) sched.Scheduler {
						return core.New(core.DefaultOptions(), b.Board)
					})
					if err != nil {
						return nil, err
					}
					for _, ev := range seq {
						if err := cl.Submit(cachedGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
							return nil, err
						}
					}
					res, err := cl.Run()
					if err != nil {
						return nil, fmt.Errorf("scale-out %d boards, %v, sequence %d: %w", boards, d, si, err)
					}
					resp := make([]float64, len(res))
					for i, r := range res {
						resp[i] = r.Response.Seconds()
					}
					return resp, nil
				})
			}
		}
	}
	results, err := runJobs(cfg.workers(), jobs)
	if err != nil {
		return nil, err
	}
	out := &ScaleOutResult{MeanResponse: map[int]map[cluster.Dispatch]float64{}}
	ji := 0
	for _, boards := range ScaleOutBoards {
		out.MeanResponse[boards] = map[cluster.Dispatch]float64{}
		for _, d := range scaleOutDispatches {
			var all []float64
			for range seqs {
				all = append(all, results[ji]...)
				ji++
			}
			out.MeanResponse[boards][d] = metrics.Mean(all)
		}
	}
	return out, nil
}

// Render prints the sweep.
func (r *ScaleOutResult) Render() string {
	t := &report.Table{
		Title:  "Scale-out study: mean response (s) by cluster size and dispatch (stress, Nimblock per board)",
		Header: []string{"Boards", "round-robin", "least-loaded", "least-pending", "random"},
	}
	for _, boards := range ScaleOutBoards {
		row := []any{fmt.Sprintf("%d", boards)}
		for _, d := range scaleOutDispatches {
			row = append(row, report.FormatSeconds(r.MeanResponse[boards][d]))
		}
		t.AddRow(row...)
	}
	return t.Render()
}
