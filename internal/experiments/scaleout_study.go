package experiments

import (
	"fmt"
	"nimblock/internal/hv"

	"nimblock/internal/apps"
	"nimblock/internal/cluster"
	"nimblock/internal/core"
	"nimblock/internal/metrics"
	"nimblock/internal/report"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// ScaleOutBoards is the cluster-size sweep.
var ScaleOutBoards = []int{1, 2, 4, 8}

// scaleOutDispatches compared in the study.
var scaleOutDispatches = []cluster.Dispatch{
	cluster.RoundRobin, cluster.LeastLoaded, cluster.LeastPending, cluster.RandomBoard,
}

// ScaleOutResult quantifies multi-FPGA scale-out — the virtualization
// property the paper's introduction lists but leaves to future work.
type ScaleOutResult struct {
	// MeanResponse maps boards -> dispatch -> mean response seconds of a
	// stress-scenario burst under Nimblock per board.
	MeanResponse map[int]map[cluster.Dispatch]float64
}

// ScaleOut sweeps cluster sizes and dispatch policies over the stress
// stimulus.
func ScaleOut(cfg Config) (*ScaleOutResult, error) {
	out := &ScaleOutResult{MeanResponse: map[int]map[cluster.Dispatch]float64{}}
	seqs := workload.GenerateTest(workload.Spec{Scenario: workload.Stress, Events: cfg.Events}, cfg.Seed)
	if cfg.Sequences < len(seqs) {
		seqs = seqs[:cfg.Sequences]
	}
	for _, boards := range ScaleOutBoards {
		out.MeanResponse[boards] = map[cluster.Dispatch]float64{}
		for _, d := range scaleOutDispatches {
			var all []float64
			for si, seq := range seqs {
				eng := sim.NewEngine()
				ccfg := cluster.Config{Boards: boards, HV: cfg.HV, Dispatch: d, Seed: cfg.Seed}
				cl, err := cluster.New(eng, ccfg, func(b hv.Config) sched.Scheduler {
					return core.New(core.DefaultOptions(), b.Board)
				})
				if err != nil {
					return nil, err
				}
				for _, ev := range seq {
					if err := cl.Submit(apps.MustGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
						return nil, err
					}
				}
				res, err := cl.Run()
				if err != nil {
					return nil, fmt.Errorf("scale-out %d boards, %v, sequence %d: %w", boards, d, si, err)
				}
				for _, r := range res {
					all = append(all, r.Response.Seconds())
				}
			}
			out.MeanResponse[boards][d] = metrics.Mean(all)
		}
	}
	return out, nil
}

// Render prints the sweep.
func (r *ScaleOutResult) Render() string {
	t := &report.Table{
		Title:  "Scale-out study: mean response (s) by cluster size and dispatch (stress, Nimblock per board)",
		Header: []string{"Boards", "round-robin", "least-loaded", "least-pending", "random"},
	}
	for _, boards := range ScaleOutBoards {
		row := []any{fmt.Sprintf("%d", boards)}
		for _, d := range scaleOutDispatches {
			row = append(row, report.FormatSeconds(r.MeanResponse[boards][d]))
		}
		t.AddRow(row...)
	}
	return t.Render()
}
