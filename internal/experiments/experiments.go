// Package experiments reproduces every table and figure in the paper's
// evaluation (Section 5). Each experiment has a driver that returns
// structured data and a renderer that prints the same rows/series the
// paper reports; cmd/nimblock-paper and the repository's benchmarks are
// thin wrappers over these drivers.
package experiments

import (
	"fmt"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/fpga"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sched/baseline"
	"nimblock/internal/sched/fcfs"
	"nimblock/internal/sched/prema"
	"nimblock/internal/sched/rr"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// Config scales the experiment harness.
type Config struct {
	// HV configures the hypervisor and board.
	HV hv.Config
	// Seed derives every random sequence.
	Seed int64
	// Sequences per test (paper: 10). Lower for quick runs.
	Sequences int
	// Events per sequence (paper: 20).
	Events int
}

// DefaultConfig reproduces the paper's scale.
func DefaultConfig() Config {
	return Config{
		HV:        hv.DefaultConfig(),
		Seed:      20230617, // ISCA'23 presentation date
		Sequences: workload.SequencesPerTest,
		Events:    workload.EventsPerSequence,
	}
}

// QuickConfig is a reduced-scale configuration for smoke tests and
// benchmarks that must finish in seconds.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Sequences = 2
	c.Events = 8
	return c
}

// PolicyNames lists the five evaluated algorithms in figure order.
var PolicyNames = []string{"Baseline", "FCFS", "PREMA", "RR", "Nimblock"}

// SharingPolicyNames lists the four sharing algorithms (everything but
// the baseline), the set normalized in Figures 5 and 6.
var SharingPolicyNames = []string{"FCFS", "PREMA", "RR", "Nimblock"}

// AblationNames lists the Nimblock variants of Section 5.6.
var AblationNames = []string{"Nimblock", "NimblockNoPreempt", "NimblockNoPipe", "NimblockNoPreemptNoPipe"}

// NewPolicy instantiates a scheduler by name.
func NewPolicy(name string, board fpga.Config) (sched.Scheduler, error) {
	switch name {
	case "Baseline":
		return baseline.New(), nil
	case "FCFS":
		return fcfs.New(), nil
	case "PREMA":
		return prema.New(), nil
	case "RR":
		return rr.New(), nil
	case "Nimblock":
		return core.New(core.Options{Preemption: true, Pipelining: true}, board), nil
	case "NimblockNoPreempt":
		return core.New(core.Options{Pipelining: true}, board), nil
	case "NimblockNoPipe":
		return core.New(core.Options{Preemption: true}, board), nil
	case "NimblockNoPreemptNoPipe":
		return core.New(core.Options{}, board), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", name)
	}
}

// RunSequence replays one event sequence under one policy and returns
// per-event results (AppIDs follow event order, starting at 1).
func RunSequence(cfg Config, policy string, seq workload.Sequence) ([]hv.Result, error) {
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	pol, err := NewPolicy(policy, cfg.HV.Board)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	h, err := hv.New(eng, cfg.HV, pol)
	if err != nil {
		return nil, err
	}
	for _, ev := range seq {
		if err := h.Submit(apps.MustGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
			return nil, err
		}
	}
	return h.Run()
}

// idOffset separates AppIDs of different sequences when results are
// pooled across a whole test.
const idOffset = 1_000_000

// ScenarioData pools results for one congestion scenario across all
// sequences and policies, plus the per-event single-slot latencies needed
// for deadline analysis.
type ScenarioData struct {
	Scenario workload.Scenario
	// Results maps policy name to the pooled per-event results; events
	// from sequence i carry AppIDs offset by i*idOffset so they remain
	// unique and match across policies.
	Results map[string][]hv.Result
	// PerSequence maps policy name to per-sequence result slices (same
	// offset IDs), for statistics that must stay sequence-local.
	PerSequence map[string][][]hv.Result
	// SingleSlot maps pooled AppIDs to single-slot latencies.
	SingleSlot map[int64]sim.Duration
}

// RunScenario replays the scenario's full stimulus under every policy in
// the given list.
func RunScenario(cfg Config, scenario workload.Scenario, policyNames []string) (*ScenarioData, error) {
	spec := workload.Spec{Scenario: scenario, Events: cfg.Events}
	return runSpec(cfg, spec, scenario, policyNames)
}

func runSpec(cfg Config, spec workload.Spec, scenario workload.Scenario, policyNames []string) (*ScenarioData, error) {
	data := &ScenarioData{
		Scenario:    scenario,
		Results:     map[string][]hv.Result{},
		PerSequence: map[string][][]hv.Result{},
		SingleSlot:  map[int64]sim.Duration{},
	}
	seqs := workload.GenerateTest(spec, cfg.Seed)
	if cfg.Sequences < len(seqs) {
		seqs = seqs[:cfg.Sequences]
	}
	for si, seq := range seqs {
		for _, pol := range policyNames {
			res, err := RunSequence(cfg, pol, seq)
			if err != nil {
				return nil, fmt.Errorf("scenario %v, sequence %d, policy %s: %w", scenario, si, pol, err)
			}
			for i := range res {
				res[i].AppID += int64(si) * idOffset
			}
			data.Results[pol] = append(data.Results[pol], res...)
			data.PerSequence[pol] = append(data.PerSequence[pol], res)
		}
		for i, ev := range seq {
			id := int64(i+1) + int64(si)*idOffset
			data.SingleSlot[id] = hv.SingleSlotLatencyFor(cfg.HV.Board, apps.MustGraph(ev.App), ev.Batch)
		}
	}
	return data, nil
}
