// Package experiments reproduces every table and figure in the paper's
// evaluation (Section 5). Each experiment has a driver that returns
// structured data and a renderer that prints the same rows/series the
// paper reports; cmd/nimblock-paper and the repository's benchmarks are
// thin wrappers over these drivers.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/fpga"
	"nimblock/internal/hv"
	"nimblock/internal/obs"
	"nimblock/internal/sched"
	"nimblock/internal/sched/baseline"
	"nimblock/internal/sched/ckpt"
	"nimblock/internal/sched/energy"
	"nimblock/internal/sched/fcfs"
	"nimblock/internal/sched/prema"
	"nimblock/internal/sched/rr"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
	"nimblock/internal/workload"
)

// Config scales the experiment harness.
type Config struct {
	// HV configures the hypervisor and board.
	HV hv.Config
	// Seed derives every random sequence.
	Seed int64
	// Sequences per test (paper: 10). Lower for quick runs.
	Sequences int
	// Events per sequence (paper: 20).
	Events int
	// Workers bounds the worker pool fanning independent runs across
	// goroutines: 0 consults NIMBLOCK_PARALLEL then defaults to
	// GOMAXPROCS; 1 forces the serial reference path. Output is
	// byte-identical at any setting.
	Workers int
	// NewObserver, when non-nil, is called once per simulation run to
	// build that run's live observer (it is teed with any HV.Observer
	// already set). Runs execute concurrently under the worker pool, so
	// per-run sinks keep pairing state (app IDs, slot windows) local
	// while still aggregating into shared, concurrency-safe state — the
	// pattern obs.NewMetrics over one shared Registry is built for.
	NewObserver func() obs.Sink
}

// DefaultConfig reproduces the paper's scale.
func DefaultConfig() Config {
	return Config{
		HV:        hv.DefaultConfig(),
		Seed:      20230617, // ISCA'23 presentation date
		Sequences: workload.SequencesPerTest,
		Events:    workload.EventsPerSequence,
	}
}

// QuickConfig is a reduced-scale configuration for smoke tests and
// benchmarks that must finish in seconds.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Sequences = 2
	c.Events = 8
	return c
}

// PolicyNames lists the five evaluated algorithms in figure order.
var PolicyNames = []string{"Baseline", "FCFS", "PREMA", "RR", "Nimblock"}

// SharingPolicyNames lists the four sharing algorithms (everything but
// the baseline), the set normalized in Figures 5 and 6.
var SharingPolicyNames = []string{"FCFS", "PREMA", "RR", "Nimblock"}

// AblationNames lists the Nimblock variants of Section 5.6.
var AblationNames = []string{"Nimblock", "NimblockNoPreempt", "NimblockNoPipe", "NimblockNoPreemptNoPipe"}

// NewPolicy instantiates a scheduler by name.
func NewPolicy(name string, board fpga.Config) (sched.Scheduler, error) {
	switch name {
	case "Baseline":
		return baseline.New(), nil
	case "FCFS":
		return fcfs.New(), nil
	case "PREMA":
		return prema.New(), nil
	case "RR":
		return rr.New(), nil
	case "Nimblock":
		return core.New(core.Options{Preemption: true, Pipelining: true}, board), nil
	case "NimblockNoPreempt":
		return core.New(core.Options{Pipelining: true}, board), nil
	case "NimblockNoPipe":
		return core.New(core.Options{Preemption: true}, board), nil
	case "NimblockNoPreemptNoPipe":
		return core.New(core.Options{}, board), nil
	case "NimblockCheckpoint":
		return ckpt.New(ckpt.DefaultOptions(), board), nil
	case "NimblockEnergy":
		return energy.New(board), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", name)
	}
}

// graphMemo caches benchmark task-graphs by name. apps.MustGraph builds a
// fresh graph on every call; the harness submits the same six benchmarks
// tens of thousands of times, so it shares one immutable Graph per name
// instead (Graphs are frozen at Build and safe for concurrent readers).
var graphMemo sync.Map // string -> *taskgraph.Graph

func cachedGraph(name string) *taskgraph.Graph {
	if g, ok := graphMemo.Load(name); ok {
		return g.(*taskgraph.Graph)
	}
	g, _ := graphMemo.LoadOrStore(name, apps.MustGraph(name))
	return g.(*taskgraph.Graph)
}

// ssKey identifies one single-slot latency: the board bandwidths and
// latency scale are the only board parameters SingleSlotLatencyFor
// reads. The scale entered the key with heterogeneous boards — without
// it, a slow edge board would silently reuse a fast board's cached
// latency.
type ssKey struct {
	app   string
	batch int
	capBW float64
	sdBW  float64
	scale float64
}

var ssMemo sync.Map // ssKey -> sim.Duration

// cachedSingleSlot memoizes hv.SingleSlotLatencyFor per (app, batch,
// board-bandwidth) configuration across scenarios, sweeps, and runs.
func cachedSingleSlot(board fpga.Config, app string, batch int) sim.Duration {
	key := ssKey{app: app, batch: batch, capBW: board.CAPBytesPerSec, sdBW: board.SDBytesPerSec, scale: board.LatencyScale}
	if d, ok := ssMemo.Load(key); ok {
		return d.(sim.Duration)
	}
	d, _ := ssMemo.LoadOrStore(key, hv.SingleSlotLatencyFor(board, cachedGraph(app), batch))
	return d.(sim.Duration)
}

// eventsFired accumulates simulator event counts across every run in
// the process: one atomic add per run (not per event), so parallel
// workers do not contend. cmd/nimblock-bench reads it to report
// events/sec alongside ns/op.
var eventsFired atomic.Int64

// EventsFired reports the total simulator events fired by experiment
// runs so far in this process.
func EventsFired() int64 { return eventsFired.Load() }

// countEvents books a finished run's event count; use with defer right
// after creating a run's engine.
func countEvents(eng *sim.Engine) { eventsFired.Add(eng.Fired()) }

// RunSequence replays one event sequence under one policy and returns
// per-event results (AppIDs follow event order, starting at 1).
func RunSequence(cfg Config, policy string, seq workload.Sequence) ([]hv.Result, error) {
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	pol, err := NewPolicy(policy, cfg.HV.Board)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	defer countEvents(eng)
	hcfg := cfg.HV
	if cfg.NewObserver != nil {
		hcfg.Observer = obs.Tee(hcfg.Observer, cfg.NewObserver())
	}
	h, err := hv.New(eng, hcfg, pol)
	if err != nil {
		return nil, err
	}
	for _, ev := range seq {
		if err := h.Submit(cachedGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
			return nil, err
		}
	}
	return h.Run()
}

// idOffset separates AppIDs of different sequences when results are
// pooled across a whole test.
const idOffset = 1_000_000

// ScenarioData pools results for one congestion scenario across all
// sequences and policies, plus the per-event single-slot latencies needed
// for deadline analysis.
type ScenarioData struct {
	Scenario workload.Scenario
	// Results maps policy name to the pooled per-event results; events
	// from sequence i carry AppIDs offset by i*idOffset so they remain
	// unique and match across policies.
	Results map[string][]hv.Result
	// PerSequence maps policy name to per-sequence result slices (same
	// offset IDs), for statistics that must stay sequence-local.
	PerSequence map[string][][]hv.Result
	// SingleSlot maps pooled AppIDs to single-slot latencies.
	SingleSlot map[int64]sim.Duration
}

// RunScenario replays the scenario's full stimulus under every policy in
// the given list.
func RunScenario(cfg Config, scenario workload.Scenario, policyNames []string) (*ScenarioData, error) {
	spec := workload.Spec{Scenario: scenario, Events: cfg.Events}
	return runSpec(cfg, spec, scenario, policyNames)
}

func runSpec(cfg Config, spec workload.Spec, scenario workload.Scenario, policyNames []string) (*ScenarioData, error) {
	out, err := runSpecs([]specRun{{cfg: cfg, spec: spec, scenario: scenario, policies: policyNames}})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// specRun is one stimulus to replay: a (config, spec, policy-set) triple.
// Batch runners (ablation, sweeps) submit several at once so every
// underlying (sequence, policy) simulation lands in one worker pool.
type specRun struct {
	cfg      Config
	spec     workload.Spec
	scenario workload.Scenario
	policies []string
}

// runSpecs replays every spec under every one of its policies, fanning
// all independent (spec, sequence, policy) simulations across the worker
// pool and assembling each ScenarioData in the exact order the serial
// loops produced it, so downstream statistics see identical inputs.
func runSpecs(runs []specRun) ([]*ScenarioData, error) {
	// Generate stimuli up front (cheap, deterministic) so job closures
	// capture ready-made sequences.
	seqsByRun := make([][]workload.Sequence, len(runs))
	for ri, run := range runs {
		seqs := workload.GenerateTest(run.spec, run.cfg.Seed)
		if run.cfg.Sequences < len(seqs) {
			seqs = seqs[:run.cfg.Sequences]
		}
		seqsByRun[ri] = seqs
	}
	var jobs []func(context.Context) ([]hv.Result, error)
	for ri, run := range runs {
		run := run
		for si, seq := range seqsByRun[ri] {
			si, seq := si, seq
			for _, pol := range run.policies {
				pol := pol
				jobs = append(jobs, func(context.Context) ([]hv.Result, error) {
					res, err := RunSequence(run.cfg, pol, seq)
					if err != nil {
						return nil, fmt.Errorf("scenario %v, sequence %d, policy %s: %w", run.scenario, si, pol, err)
					}
					for i := range res {
						res[i].AppID += int64(si) * idOffset
					}
					return res, nil
				})
			}
		}
	}
	results, err := runJobs(runs[0].cfg.workers(), jobs)
	if err != nil {
		return nil, err
	}
	out := make([]*ScenarioData, len(runs))
	ji := 0
	for ri, run := range runs {
		data := &ScenarioData{
			Scenario:    run.scenario,
			Results:     map[string][]hv.Result{},
			PerSequence: map[string][][]hv.Result{},
			SingleSlot:  map[int64]sim.Duration{},
		}
		for si, seq := range seqsByRun[ri] {
			for _, pol := range run.policies {
				res := results[ji]
				ji++
				data.Results[pol] = append(data.Results[pol], res...)
				data.PerSequence[pol] = append(data.PerSequence[pol], res)
			}
			for i, ev := range seq {
				id := int64(i+1) + int64(si)*idOffset
				data.SingleSlot[id] = cachedSingleSlot(run.cfg.HV.Board, ev.App, ev.Batch)
			}
		}
		out[ri] = data
	}
	return out, nil
}
