package experiments

import (
	"strings"
	"testing"

	"nimblock/internal/obs"
)

// TestOverloadGracefulDegradation is the acceptance check for the
// admission layer: past saturation, admitted-traffic p99 stays within a
// constant factor of the at-saturation run while the shed counters
// absorb the excess.
func TestOverloadGracefulDegradation(t *testing.T) {
	cfg := QuickConfig()
	reg := obs.NewRegistry()
	res, err := Overload(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(OverloadMultipliers) || res.BaseRate <= 0 {
		t.Fatalf("malformed result: %+v", res)
	}
	byMult := map[float64]*OverloadPoint{}
	for _, pt := range res.Points {
		byMult[pt.Multiplier] = pt
		if pt.Offered != cfg.Sequences*cfg.Events {
			t.Fatalf("%gx: offered %d, want %d", pt.Multiplier, pt.Offered, cfg.Sequences*cfg.Events)
		}
		if pt.Admitted-pt.Evicted+pt.Shed != pt.Offered {
			t.Fatalf("%gx: conservation broken: %+v", pt.Multiplier, pt)
		}
		if pt.Admitted == 0 || pt.P99Response <= 0 {
			t.Fatalf("%gx: nothing admitted: %+v", pt.Multiplier, pt)
		}
	}
	// Deep overload must actually shed...
	if byMult[4].Shed == 0 {
		t.Fatalf("4x saturation shed nothing: %+v", byMult[4])
	}
	// ...and bounded admission must keep admitted-traffic latency within
	// a constant factor of the at-saturation run. The queue bound makes
	// the worst admitted backlog independent of arrival rate; 10x leaves
	// room for batch-size variance at quick scale.
	if lim := 10 * byMult[1].P99Response; byMult[2].P99Response > lim {
		t.Fatalf("2x p99 %.2fs exceeds 10x the 1x p99 %.2fs", byMult[2].P99Response, byMult[1].P99Response)
	}
	// The live registry side-channel saw the same shedding.
	snap := reg.Snapshot()
	var totalShed, totalAdmitted int
	for _, pt := range res.Points {
		totalShed += pt.Shed
		totalAdmitted += pt.Admitted
	}
	if int(snap.Counters["admit_shed_total"]) != totalShed || int(snap.Counters["admit_admitted_total"]) != totalAdmitted {
		t.Fatalf("registry counters %v disagree with stats (shed %d admitted %d)", snap.Counters, totalShed, totalAdmitted)
	}
	if !strings.Contains(res.Render(), "Overload sweep") {
		t.Fatal("render missing title")
	}
}

// TestOverloadDeterministic: same config, same result, including under
// the parallel worker pool.
func TestOverloadDeterministic(t *testing.T) {
	cfg := QuickConfig()
	a, err := Overload(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	b, err := Overload(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("parallel run diverged:\n%s\nvs\n%s", a.Render(), b.Render())
	}
}
