package experiments

import (
	"fmt"

	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/report"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// PreemptVariant is one preemption mechanism under study.
type PreemptVariant struct {
	Name          string
	Mode          hv.PreemptMode
	Save, Restore sim.Duration
}

// PreemptVariants compares the paper's batch-boundary preemption with
// classic checkpointing at three hardware cost points: near-free state
// registers (the future-work hardware), realistic capture through
// configuration readback (~10 ms), and capture as expensive as a full
// reconfiguration (~80 ms).
var PreemptVariants = []PreemptVariant{
	{Name: "batch-boundary", Mode: hv.PreemptAtBatchBoundary},
	{Name: "checkpoint-1ms", Mode: hv.PreemptWithCheckpoint, Save: sim.Millisecond, Restore: sim.Millisecond},
	{Name: "checkpoint-10ms", Mode: hv.PreemptWithCheckpoint, Save: 10 * sim.Millisecond, Restore: 10 * sim.Millisecond},
	{Name: "checkpoint-80ms", Mode: hv.PreemptWithCheckpoint, Save: 80 * sim.Millisecond, Restore: 80 * sim.Millisecond},
}

// PreemptStudyResult quantifies the batch-vs-checkpoint design choice
// (Section 3.2 motivates batch-preemption; the future work asks what
// finer-granularity preemption hardware would buy).
type PreemptStudyResult struct {
	// MeanResponse maps variant name -> mean response seconds (stress).
	MeanResponse map[string]float64
	// ErrorPoint10 maps variant name -> 10% deadline error point
	// (high-priority apps).
	ErrorPoint10 map[string]float64
	// TightViolations maps variant name -> violation rate at Ds=1.
	TightViolations map[string]float64
}

// PreemptStudy runs the stress stimulus under Nimblock with each
// preemption mechanism.
func PreemptStudy(cfg Config) (*PreemptStudyResult, error) {
	out := &PreemptStudyResult{
		MeanResponse:    map[string]float64{},
		ErrorPoint10:    map[string]float64{},
		TightViolations: map[string]float64{},
	}
	spec := metrics.DefaultDeadlineSpec()
	for _, v := range PreemptVariants {
		c := cfg
		c.HV.Preempt = v.Mode
		c.HV.CheckpointSave = v.Save
		c.HV.CheckpointRestore = v.Restore
		data, err := RunScenario(c, workload.Stress, []string{"Nimblock"})
		if err != nil {
			return nil, fmt.Errorf("preempt study %s: %w", v.Name, err)
		}
		rs := data.Results["Nimblock"]
		out.MeanResponse[v.Name] = meanResponse(rs)
		pts, err := metrics.DeadlineSweep(rs, data.SingleSlot, spec)
		if err != nil {
			return nil, err
		}
		out.ErrorPoint10[v.Name] = metrics.ErrorPoint(pts, 0.10)
		out.TightViolations[v.Name] = pts[0].ViolationRate
	}
	return out, nil
}

// Render prints the study.
func (r *PreemptStudyResult) Render() string {
	t := &report.Table{
		Title:  "Preemption mechanism study: batch-boundary vs checkpointing (stress, Nimblock)",
		Header: []string{"Mechanism", "Mean response", "Ds=1 violations", "10% error point"},
	}
	for _, v := range PreemptVariants {
		ep := "never"
		if e := r.ErrorPoint10[v.Name]; e >= 0 {
			ep = report.FormatFloat(e)
		}
		t.AddRow(v.Name,
			report.FormatSeconds(r.MeanResponse[v.Name]),
			report.FormatPercent(r.TightViolations[v.Name]),
			ep)
	}
	return t.Render()
}
