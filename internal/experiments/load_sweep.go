package experiments

import (
	"fmt"

	"nimblock/internal/report"
	"nimblock/internal/workload"
)

// LoadPoints are the offered-load operating points: Poisson arrival
// rates in applications per second. The board saturates when offered
// work outpaces its ten slots.
var LoadPoints = []float64{0.1, 0.25, 0.5, 1.0, 2.0}

// LoadSweepResult holds open-system saturation curves: mean response vs
// offered load under Poisson arrivals, the arrival process cloud
// capacity planning assumes.
type LoadSweepResult struct {
	// MeanResponse maps arrival rate -> policy -> mean response seconds.
	MeanResponse map[float64]map[string]float64
}

// loadSweepPolicies compared in the sweep.
var loadSweepPolicies = []string{"FCFS", "PREMA", "RR", "Nimblock"}

// LoadSweep generates Poisson stimuli at each arrival rate (batch capped
// at 8 so the system can drain) and measures every sharing algorithm.
// Every rate point is submitted to the worker pool together.
func LoadSweep(cfg Config) (*LoadSweepResult, error) {
	runs := make([]specRun, 0, len(LoadPoints))
	for _, rate := range LoadPoints {
		spec := workload.Spec{
			Scenario:    workload.Stress, // unused when PoissonRate set
			Events:      cfg.Events,
			PoissonRate: rate,
			FixedBatch:  0,
			Pool: []string{ // exclude DigitRecognition: one arrival saturates any rate
				"LeNet", "ImageCompression", "3DRendering", "OpticalFlow", "AlexNet",
			},
		}
		runs = append(runs, specRun{cfg: cfg, spec: spec, scenario: workload.Stress, policies: loadSweepPolicies})
	}
	datas, err := runSpecs(runs)
	if err != nil {
		return nil, fmt.Errorf("load sweep: %w", err)
	}
	out := &LoadSweepResult{MeanResponse: map[float64]map[string]float64{}}
	for i, rate := range LoadPoints {
		out.MeanResponse[rate] = map[string]float64{}
		for _, pol := range loadSweepPolicies {
			out.MeanResponse[rate][pol] = meanResponse(datas[i].Results[pol])
		}
	}
	return out, nil
}

// Render prints the sweep.
func (r *LoadSweepResult) Render() string {
	t := &report.Table{
		Title:  "Offered-load sweep: mean response (s) vs Poisson arrival rate (apps/s)",
		Header: append([]string{"Rate"}, loadSweepPolicies...),
	}
	for _, rate := range LoadPoints {
		row := []any{report.FormatFloat(rate)}
		for _, pol := range loadSweepPolicies {
			row = append(row, report.FormatSeconds(r.MeanResponse[rate][pol]))
		}
		t.AddRow(row...)
	}
	return t.Render()
}
