package experiments

import (
	"fmt"

	"nimblock/internal/report"
	"nimblock/internal/workload"
)

// ReconfigPoint is one reconfiguration-latency operating point, scaling
// the CAP and SD bandwidths so one slot image takes the given time.
type ReconfigPoint struct {
	Name  string
	Scale float64 // bandwidth divisor: 1 = ~80 ms, 4 = ~320 ms, 0.25 = ~20 ms
}

// ReconfigPoints sweeps the partial-reconfiguration latency from a fast
// ICAP-like port to a slow one: the paper observes task runtimes from
// 20% to 200x of the ~80 ms PR time, and that "masking the latency of
// partial reconfiguration is crucial to performance".
var ReconfigPoints = []ReconfigPoint{
	{Name: "~20ms", Scale: 0.25},
	{Name: "~80ms (paper)", Scale: 1},
	{Name: "~320ms", Scale: 4},
	{Name: "~1.3s", Scale: 16},
}

// ReconfigSweepResult reports how reconfiguration latency shifts the
// algorithm comparison.
type ReconfigSweepResult struct {
	// MeanResponse maps point name -> policy -> mean response seconds.
	MeanResponse map[string]map[string]float64
	// NimblockOverPrema maps point name -> PREMA/Nimblock mean ratio
	// (how much masking buys as reconfiguration gets more expensive).
	NimblockOverPrema map[string]float64
}

// ReconfigSweep reruns the stress stimulus with scaled reconfiguration
// latencies for PREMA and Nimblock (the masking-capable algorithm).
func ReconfigSweep(cfg Config) (*ReconfigSweepResult, error) {
	out := &ReconfigSweepResult{
		MeanResponse:      map[string]map[string]float64{},
		NimblockOverPrema: map[string]float64{},
	}
	pols := []string{"PREMA", "Nimblock"}
	for _, pt := range ReconfigPoints {
		c := cfg
		c.HV.Board.CAPBytesPerSec = cfg.HV.Board.CAPBytesPerSec / pt.Scale
		c.HV.Board.SDBytesPerSec = cfg.HV.Board.SDBytesPerSec / pt.Scale
		data, err := RunScenario(c, workload.Stress, pols)
		if err != nil {
			return nil, fmt.Errorf("reconfig sweep %s: %w", pt.Name, err)
		}
		out.MeanResponse[pt.Name] = map[string]float64{}
		for _, pol := range pols {
			out.MeanResponse[pt.Name][pol] = meanResponse(data.Results[pol])
		}
		nim := out.MeanResponse[pt.Name]["Nimblock"]
		if nim > 0 {
			out.NimblockOverPrema[pt.Name] = out.MeanResponse[pt.Name]["PREMA"] / nim
		}
	}
	return out, nil
}

// Render prints the sweep.
func (r *ReconfigSweepResult) Render() string {
	t := &report.Table{
		Title:  "Reconfiguration latency sweep (stress): masking matters more as PR slows",
		Header: []string{"PR latency", "PREMA", "Nimblock", "PREMA/Nimblock"},
	}
	for _, pt := range ReconfigPoints {
		t.AddRow(pt.Name,
			report.FormatSeconds(r.MeanResponse[pt.Name]["PREMA"]),
			report.FormatSeconds(r.MeanResponse[pt.Name]["Nimblock"]),
			report.FormatFactor(r.NimblockOverPrema[pt.Name]))
	}
	return t.Render()
}
