package experiments

import (
	"fmt"

	"nimblock/internal/report"
	"nimblock/internal/workload"
)

// ReconfigPoint is one reconfiguration-latency operating point, scaling
// the CAP and SD bandwidths so one slot image takes the given time.
type ReconfigPoint struct {
	Name  string
	Scale float64 // bandwidth divisor: 1 = ~80 ms, 4 = ~320 ms, 0.25 = ~20 ms
}

// ReconfigPoints sweeps the partial-reconfiguration latency from a fast
// ICAP-like port to a slow one: the paper observes task runtimes from
// 20% to 200x of the ~80 ms PR time, and that "masking the latency of
// partial reconfiguration is crucial to performance".
var ReconfigPoints = []ReconfigPoint{
	{Name: "~20ms", Scale: 0.25},
	{Name: "~80ms (paper)", Scale: 1},
	{Name: "~320ms", Scale: 4},
	{Name: "~1.3s", Scale: 16},
}

// ReconfigSweepResult reports how reconfiguration latency shifts the
// algorithm comparison.
type ReconfigSweepResult struct {
	// MeanResponse maps point name -> policy -> mean response seconds.
	MeanResponse map[string]map[string]float64
	// NimblockOverPrema maps point name -> PREMA/Nimblock mean ratio
	// (how much masking buys as reconfiguration gets more expensive).
	NimblockOverPrema map[string]float64
}

// ReconfigSweep reruns the stress stimulus with scaled reconfiguration
// latencies for PREMA and Nimblock (the masking-capable algorithm).
// Every latency point is submitted to the worker pool together.
func ReconfigSweep(cfg Config) (*ReconfigSweepResult, error) {
	pols := []string{"PREMA", "Nimblock"}
	runs := make([]specRun, 0, len(ReconfigPoints))
	for _, pt := range ReconfigPoints {
		c := cfg
		c.HV.Board.CAPBytesPerSec = cfg.HV.Board.CAPBytesPerSec / pt.Scale
		c.HV.Board.SDBytesPerSec = cfg.HV.Board.SDBytesPerSec / pt.Scale
		spec := workload.Spec{Scenario: workload.Stress, Events: c.Events}
		runs = append(runs, specRun{cfg: c, spec: spec, scenario: workload.Stress, policies: pols})
	}
	datas, err := runSpecs(runs)
	if err != nil {
		return nil, fmt.Errorf("reconfig sweep: %w", err)
	}
	out := &ReconfigSweepResult{
		MeanResponse:      map[string]map[string]float64{},
		NimblockOverPrema: map[string]float64{},
	}
	for i, pt := range ReconfigPoints {
		out.MeanResponse[pt.Name] = map[string]float64{}
		for _, pol := range pols {
			out.MeanResponse[pt.Name][pol] = meanResponse(datas[i].Results[pol])
		}
		nim := out.MeanResponse[pt.Name]["Nimblock"]
		if nim > 0 {
			out.NimblockOverPrema[pt.Name] = out.MeanResponse[pt.Name]["PREMA"] / nim
		}
	}
	return out, nil
}

// Render prints the sweep.
func (r *ReconfigSweepResult) Render() string {
	t := &report.Table{
		Title:  "Reconfiguration latency sweep (stress): masking matters more as PR slows",
		Header: []string{"PR latency", "PREMA", "Nimblock", "PREMA/Nimblock"},
	}
	for _, pt := range ReconfigPoints {
		t.AddRow(pt.Name,
			report.FormatSeconds(r.MeanResponse[pt.Name]["PREMA"]),
			report.FormatSeconds(r.MeanResponse[pt.Name]["Nimblock"]),
			report.FormatFactor(r.NimblockOverPrema[pt.Name]))
	}
	return t.Render()
}
