package experiments

import (
	"fmt"
	"time"

	"nimblock/internal/fleet"
	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/obs"
	"nimblock/internal/report"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// FleetScales is the scale-up axis of the fleet sweep: board count and
// offered arrival rate both multiply by each entry, so per-board load
// stays constant while the fleet grows two orders of magnitude.
var FleetScales = []int{1, 10, 100}

// fleetQuickScales bounds the sweep for quick runs and CI smokes.
var fleetQuickScales = []int{1, 4}

// The scale-1 fleet shape: a small cluster at a gentle open-loop rate.
// Batches are capped like the load sweeps so offered work scales with
// the arrival rate rather than a heavy tail of giant batches.
const (
	fleetBaseBoards = 4
	fleetBaseRate   = 0.125 // Poisson arrivals per second at scale 1
	fleetBatchCap   = 4
	fleetShardCap   = 8
	fleetEpoch      = 100 * sim.Millisecond
)

// FleetCell aggregates one scale point.
type FleetCell struct {
	Scale    int
	Boards   int
	Shards   int
	Rate     float64
	Arrivals int
	Done     int
	Shed     int
	// MeanResponse and P99Response are in seconds over completed
	// submissions.
	MeanResponse, P99Response float64
	// Makespan is the simulated quiescence time in seconds.
	Makespan float64
	// EventsFired counts simulator events across every shard engine;
	// EventsPerSec divides by the cell's wall-clock runtime (the
	// throughput figure the bench gate tracks).
	EventsFired  int64
	EventsPerSec float64
	Epochs       int
}

// FleetResult reports the fleet scale-up sweep.
type FleetResult struct {
	Cells []FleetCell
}

// Fleet sweeps the two-level sharded scheduler across a 100x growth in
// board count and arrival rate. Workloads are streamed (constant
// generator memory however many arrivals a cell offers); each cell
// routes over hetero/load-aware fleet placement into Nimblock-scheduled
// boards and reports p99 latency and simulator throughput. The registry
// (when non-nil, e.g. under -serve) receives the largest cell's
// per-shard instruments.
func Fleet(cfg Config, reg *obs.Registry) (*FleetResult, error) {
	if _, err := NewPolicy("Nimblock", cfg.HV.Board); err != nil {
		return nil, err
	}
	scales := FleetScales
	if cfg.Events < workload.EventsPerSequence {
		scales = fleetQuickScales
	}
	out := &FleetResult{}
	for si, scale := range scales {
		boards := fleetBaseBoards * scale
		shards := boards
		if shards > fleetShardCap {
			shards = fleetShardCap
		}
		rate := fleetBaseRate * float64(scale)
		arrivals := cfg.Sequences * cfg.Events * scale
		var cellReg *obs.Registry
		if reg != nil && si == len(scales)-1 {
			cellReg = reg
		}
		f, err := fleet.New(fleet.Config{
			Shards:  shards,
			Boards:  boards,
			HV:      cfg.HV,
			Epoch:   fleetEpoch,
			Workers: cfg.Workers,
			// Shed instead of stalling if a cell is offered more than it
			// can hold in flight; sized so the sweep's rates never hit it.
			MaxOutstanding: boards * 64,
			Registry:       cellReg,
		}, func(b hv.Config) sched.Scheduler {
			p, perr := NewPolicy("Nimblock", b.Board)
			if perr != nil {
				panic(perr) // validated above; unreachable
			}
			return p
		})
		if err != nil {
			return nil, err
		}
		stream := workload.NewStream(workload.Spec{
			PoissonRate: rate,
			BatchCap:    fleetBatchCap,
			Events:      arrivals,
		}, workload.DeriveSeed(cfg.Seed, scale))
		start := time.Now()
		results, err := f.Run(stream)
		if err != nil {
			return nil, fmt.Errorf("fleet scale %dx: %w", scale, err)
		}
		wall := time.Since(start).Seconds()
		st := f.Stats()
		eventsFired.Add(st.EventsFired)
		var responses []float64
		for _, r := range results {
			if !r.Rejected {
				responses = append(responses, r.Response.Seconds())
			}
		}
		cell := FleetCell{
			Scale:        scale,
			Boards:       boards,
			Shards:       shards,
			Rate:         rate,
			Arrivals:     st.Submitted,
			Done:         st.Completed,
			Shed:         st.Rejected,
			MeanResponse: metrics.Mean(responses),
			P99Response:  metrics.Percentile(responses, 99),
			Makespan:     st.Makespan.Seconds(),
			EventsFired:  st.EventsFired,
			Epochs:       st.Epochs,
		}
		if wall > 0 {
			cell.EventsPerSec = float64(st.EventsFired) / wall
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

// Render prints the sweep as one table, one row per scale point.
func (r *FleetResult) Render() string {
	t := &report.Table{
		Title: fmt.Sprintf("Fleet scale-up: sharded two-level scheduling, streamed Poisson arrivals (base %d boards at %g/s, batch cap %d, epoch %v)",
			fleetBaseBoards, fleetBaseRate, fleetBatchCap, fleetEpoch),
		Header: []string{"Scale", "Boards", "Shards", "Rate/s", "Arrivals", "Done", "Shed", "Mean resp", "p99 resp", "Events", "Ev/s"},
	}
	for _, c := range r.Cells {
		t.AddRow(
			fmt.Sprintf("%dx", c.Scale),
			fmt.Sprintf("%d", c.Boards),
			fmt.Sprintf("%d", c.Shards),
			fmt.Sprintf("%g", c.Rate),
			fmt.Sprintf("%d", c.Arrivals),
			fmt.Sprintf("%d", c.Done),
			fmt.Sprintf("%d", c.Shed),
			report.FormatSeconds(c.MeanResponse),
			report.FormatSeconds(c.P99Response),
			fmt.Sprintf("%d", c.EventsFired),
			fmt.Sprintf("%.2g", c.EventsPerSec),
		)
	}
	return t.Render()
}
