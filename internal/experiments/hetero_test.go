package experiments

import (
	"strings"
	"testing"

	"nimblock/internal/obs"
)

func runHeteroQuick(t *testing.T) *HeteroResult {
	t.Helper()
	cfg := QuickConfig()
	r, err := Hetero(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Every (ratio, policy) cell must be fully populated: positive energy
// split, a fairness index in (0, 1], conserved completions, and a
// positive latency tail.
func TestHeteroCellShape(t *testing.T) {
	cfg := QuickConfig()
	r, err := Hetero(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Sequences * cfg.Events
	for _, ratio := range HeteroRatios {
		cells := r.Cells[ratio]
		if len(cells) != len(HeteroPolicyNames) {
			t.Fatalf("ratio %v: %d cells, want %d", ratio, len(cells), len(HeteroPolicyNames))
		}
		for pol, c := range cells {
			if c.Completed != want {
				t.Errorf("ratio %v %s: %d completed, want %d", ratio, pol, c.Completed, want)
			}
			if c.StaticJoules <= 0 || c.ActiveJoules <= 0 || c.JoulesPerBatch <= 0 {
				t.Errorf("ratio %v %s: degenerate energy %+v", ratio, pol, c)
			}
			if c.Jain <= 0 || c.Jain > 1 {
				t.Errorf("ratio %v %s: Jain index %v outside (0,1]", ratio, pol, c.Jain)
			}
			if c.MeanResponse <= 0 || c.P99Response < c.MeanResponse {
				t.Errorf("ratio %v %s: responses mean %v p99 %v", ratio, pol, c.MeanResponse, c.P99Response)
			}
		}
	}
}

// Acceptance: NimblockEnergy strictly dominates at least one baseline
// policy on energy at equal-or-better p99 in at least one sweep cell.
func TestHeteroEnergyPolicyDominates(t *testing.T) {
	r := runHeteroQuick(t)
	for _, ratio := range HeteroRatios {
		e := r.Cells[ratio]["NimblockEnergy"]
		for _, pol := range []string{"Baseline", "FCFS", "PREMA", "RR"} {
			c := r.Cells[ratio][pol]
			if e.JoulesPerBatch < c.JoulesPerBatch && e.P99Response <= c.P99Response {
				return // dominated pol in this cell
			}
		}
	}
	t.Fatalf("NimblockEnergy dominates no baseline on energy at equal-or-better p99: %+v", r.Cells)
}

// Raising the heterogeneity ratio slows the edge boards, so every
// policy's energy per batch must grow with the ratio (longer runs burn
// more static power).
func TestHeteroRatioMonotonicity(t *testing.T) {
	r := runHeteroQuick(t)
	for _, pol := range HeteroPolicyNames {
		lo := r.Cells[HeteroRatios[0]][pol]
		hi := r.Cells[HeteroRatios[len(HeteroRatios)-1]][pol]
		if hi.JoulesPerBatch <= lo.JoulesPerBatch {
			t.Errorf("%s: joules/batch %v at ratio %v not above %v at ratio %v",
				pol, hi.JoulesPerBatch, HeteroRatios[len(HeteroRatios)-1], lo.JoulesPerBatch, HeteroRatios[0])
		}
	}
}

// The render carries a row per policy and the energy/fairness columns.
func TestHeteroRender(t *testing.T) {
	r := runHeteroQuick(t)
	out := r.Render()
	for _, pol := range HeteroPolicyNames {
		if !strings.Contains(out, pol) {
			t.Errorf("render missing policy %s", pol)
		}
	}
	for _, col := range []string{"J/batch", "Jain", "p99 resp"} {
		if !strings.Contains(out, col) {
			t.Errorf("render missing column %s", col)
		}
	}
}

// The sweep publishes energy and fairness into a shared registry when
// the harness wires an observer.
func TestHeteroPublishesObsMetrics(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sequences = 1
	reg := obs.NewRegistry()
	cfg.NewObserver = func() obs.Sink { return obs.NewMetrics(reg, cfg.HV.Board.Slots) }
	if _, err := Hetero(cfg); err != nil {
		t.Fatal(err)
	}
	if v := reg.Gauge("nimblock_energy_static_joules", "").Value(); v <= 0 {
		t.Fatalf("static energy gauge %v, want > 0", v)
	}
	if v := reg.Gauge("nimblock_energy_active_joules", "").Value(); v <= 0 {
		t.Fatalf("active energy gauge %v, want > 0", v)
	}
	if v := reg.Gauge("nimblock_fairness_jain_index", "").Value(); v <= 0 || v > 1 {
		t.Fatalf("fairness gauge %v outside (0,1]", v)
	}
}
