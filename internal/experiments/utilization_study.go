package experiments

import (
	"fmt"

	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/report"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// UtilizationResult quantifies the paper's motivating argument: the
// no-sharing model under-utilizes the fabric ("dedicating entire pieces
// of hardware to a single job, regardless of whether or not the job
// needs to use all the resources"), while fine-grained sharing keeps
// slots busy.
type UtilizationResult struct {
	// Utilization maps policy -> mean slot-time utilization (0..1) over
	// each sequence's makespan, averaged across sequences.
	Utilization map[string]float64
	// Makespan maps policy -> mean makespan seconds per sequence.
	Makespan map[string]float64
}

// UtilizationStudy measures slot occupancy under the stress scenario for
// every policy.
func UtilizationStudy(cfg Config) (*UtilizationResult, error) {
	out := &UtilizationResult{
		Utilization: map[string]float64{},
		Makespan:    map[string]float64{},
	}
	seqs := workload.GenerateTest(workload.Spec{Scenario: workload.Stress, Events: cfg.Events}, cfg.Seed)
	if cfg.Sequences < len(seqs) {
		seqs = seqs[:cfg.Sequences]
	}
	for _, pol := range PolicyNames {
		var utils, spans []float64
		for si, seq := range seqs {
			p, err := NewPolicy(pol, cfg.HV.Board)
			if err != nil {
				return nil, err
			}
			eng := sim.NewEngine()
			defer countEvents(eng)
			h, err := hv.New(eng, cfg.HV, p)
			if err != nil {
				return nil, err
			}
			for _, ev := range seq {
				if err := h.Submit(cachedGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
					return nil, err
				}
			}
			results, err := h.Run()
			if err != nil {
				return nil, fmt.Errorf("utilization %s sequence %d: %w", pol, si, err)
			}
			var makespan sim.Time
			for _, r := range results {
				if r.Retire > makespan {
					makespan = r.Retire
				}
			}
			utils = append(utils, h.Utilization(makespan))
			spans = append(spans, makespan.Seconds())
		}
		out.Utilization[pol] = metrics.Mean(utils)
		out.Makespan[pol] = metrics.Mean(spans)
	}
	return out, nil
}

// Render prints the study.
func (r *UtilizationResult) Render() string {
	t := &report.Table{
		Title:  "Utilization study: slot-time occupancy over sequence makespan (stress)",
		Header: []string{"Policy", "Utilization", "Mean makespan"},
	}
	for _, pol := range PolicyNames {
		t.AddRow(pol, report.FormatPercent(r.Utilization[pol]), report.FormatSeconds(r.Makespan[pol]))
	}
	return t.Render()
}
