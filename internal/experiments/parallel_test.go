package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"nimblock/internal/workload"
)

func TestPoolPreservesInputOrder(t *testing.T) {
	jobs := make([]func(context.Context) (int, error), 50)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // scramble completion order
			}
			return i * i, nil
		}
	}
	for _, workers := range []int{1, 4, 64} {
		got, err := runJobs(workers, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestPoolPropagatesLowestIndexError(t *testing.T) {
	jobs := make([]func(context.Context) (int, error), 20)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			return 0, fmt.Errorf("job %d failed", i)
		}
	}
	for _, workers := range []int{1, 4} {
		_, err := runJobs(workers, jobs)
		if err == nil {
			t.Fatalf("workers=%d: no error propagated", workers)
		}
		// Job 0 is claimed first and always runs; among all observed
		// failures the lowest index wins, so the error is deterministic.
		if got := err.Error(); got != "job 0 failed" {
			t.Fatalf("workers=%d: got error %q, want job 0's", workers, got)
		}
	}
}

func TestPoolCancelsStragglers(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int64
	jobs := make([]func(context.Context) (int, error), 200)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			executed.Add(1)
			if i == 0 {
				return 0, boom
			}
			time.Sleep(time.Millisecond)
			return i, nil
		}
	}
	if _, err := runJobs(2, jobs); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if n := executed.Load(); n >= 200 {
		t.Fatalf("all %d jobs executed despite early failure", n)
	}
	// The serial path must stop exactly at the failing job.
	executed.Store(0)
	if _, err := runJobs(1, jobs); !errors.Is(err, boom) {
		t.Fatalf("serial: got %v, want boom", err)
	}
	if n := executed.Load(); n != 1 {
		t.Fatalf("serial path executed %d jobs after failure, want 1", n)
	}
}

func TestConfigWorkersResolution(t *testing.T) {
	c := quick()
	c.Workers = 3
	if got := c.workers(); got != 3 {
		t.Fatalf("explicit Workers: got %d, want 3", got)
	}
	c.Workers = 0
	t.Setenv(EnvParallel, "5")
	if got := c.workers(); got != 5 {
		t.Fatalf("env override: got %d, want 5", got)
	}
	t.Setenv(EnvParallel, "bogus")
	if got := c.workers(); got < 1 {
		t.Fatalf("fallback: got %d, want >= 1", got)
	}
}

// The headline determinism guarantee: the parallel runner's ScenarioData
// is deep-equal to the serial reference across every scenario, and the
// figures rendered from it are byte-identical.
func TestParallelMatchesSerial(t *testing.T) {
	serialCfg := quick()
	serialCfg.Workers = 1
	parallelCfg := quick()
	parallelCfg.Workers = 8

	serialData := map[workload.Scenario]*ScenarioData{}
	parallelData := map[workload.Scenario]*ScenarioData{}
	for _, sc := range workload.Scenarios() {
		s, err := RunScenario(serialCfg, sc, PolicyNames)
		if err != nil {
			t.Fatal(err)
		}
		p, err := RunScenario(parallelCfg, sc, PolicyNames)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s.Results, p.Results) {
			t.Fatalf("%v: pooled Results diverge between serial and parallel", sc)
		}
		if !reflect.DeepEqual(s.PerSequence, p.PerSequence) {
			t.Fatalf("%v: PerSequence diverges between serial and parallel", sc)
		}
		if !reflect.DeepEqual(s.SingleSlot, p.SingleSlot) {
			t.Fatalf("%v: SingleSlot diverges between serial and parallel", sc)
		}
		serialData[sc] = s
		parallelData[sc] = p
	}

	renderAll := func(data map[workload.Scenario]*ScenarioData) string {
		f5, err := Fig5(data)
		if err != nil {
			t.Fatal(err)
		}
		f6, err := Fig6(data)
		if err != nil {
			t.Fatal(err)
		}
		f7, err := Fig7(data)
		if err != nil {
			t.Fatal(err)
		}
		f8, err := Fig8(data[workload.Standard])
		if err != nil {
			t.Fatal(err)
		}
		return f5.Render() + f6.Render() + f7.Render() + f8.Render()
	}
	if renderAll(serialData) != renderAll(parallelData) {
		t.Fatal("rendered figures differ between serial and parallel runs")
	}
}

func TestAblationParallelMatchesSerial(t *testing.T) {
	serialCfg := quick()
	serialCfg.Workers = 1
	parallelCfg := quick()
	parallelCfg.Workers = 8
	s, err := RunAblation(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RunAblation(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.PerBatch, p.PerBatch) {
		t.Fatal("ablation results diverge between serial and parallel")
	}
}

func TestScaleOutParallelMatchesSerial(t *testing.T) {
	serialCfg := quick()
	serialCfg.Workers = 1
	parallelCfg := quick()
	parallelCfg.Workers = 8
	s, err := ScaleOut(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ScaleOut(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.MeanResponse, p.MeanResponse) {
		t.Fatal("scale-out results diverge between serial and parallel")
	}
}

func TestChaosParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is the most expensive driver; skipped in -short mode")
	}
	serialCfg := quick()
	serialCfg.Workers = 1
	parallelCfg := quick()
	parallelCfg.Workers = 8
	s, err := Chaos(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Chaos(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Cells, p.Cells) {
		t.Fatal("chaos results diverge between serial and parallel")
	}
}

// A failing run surfaces the error through the pool rather than hanging
// or panicking workers.
func TestParallelPropagatesRunError(t *testing.T) {
	cfg := quick()
	cfg.Workers = 4
	cfg.HV.Board.Slots = 0 // invalid board: hv.New fails inside every job
	if _, err := RunScenario(cfg, workload.Stress, PolicyNames); err == nil {
		t.Fatal("invalid board accepted by parallel runner")
	}
}
