package experiments

import (
	"context"
	"fmt"

	"nimblock/internal/cluster"
	"nimblock/internal/core"
	"nimblock/internal/faults"
	"nimblock/internal/health"
	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/report"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// FailoverMTBFs are the swept board mean-time-between-failures: every
// MTBF interval one board of the fleet crashes (round-robin over the
// boards) for as long as the workload is arriving.
var FailoverMTBFs = []sim.Duration{2 * sim.Second, 8 * sim.Second}

// FailoverRecoveries are the swept board recovery times (crash to
// scheduled revival; circuit-breaker backoff gates placement after).
var FailoverRecoveries = []sim.Duration{sim.Duration(sim.Second), 5 * sim.Second}

// failoverBoards is the fleet size of the failover study.
const failoverBoards = 3

// failoverCrashWindow bounds the crash schedule: boards stop failing
// after this much simulated time so every run eventually drains.
const failoverCrashWindow = 12 * sim.Second

// FailoverCell aggregates one (MTBF, recovery, checkpointing)
// combination across every sequence of the stimulus.
type FailoverCell struct {
	// Goodput is completed submissions per simulated second.
	Goodput float64
	// P99Response is the 99th-percentile response over completed
	// submissions, in seconds.
	P99Response float64
	// Completed and Failed pool the terminal outcomes; conservation
	// means they sum to the submission count.
	Completed, Failed int
	// Deaths and Recoveries pool the fleet's board-level events.
	Deaths, Recoveries int
	// WastedWork is fabric seconds lost to board deaths (net of
	// migrated progress); MigratedWork is the fabric seconds checkpoint
	// migration preserved, across MigratedItems items.
	WastedWork, MigratedWork float64
	MigratedItems            int
}

// FailoverResult reports the board-failure sweep.
type FailoverResult struct {
	// Cells maps MTBF -> recovery -> "on"/"off" (checkpointing) -> cell.
	Cells map[sim.Duration]map[sim.Duration]map[string]FailoverCell
}

// failoverCkptModes orders the checkpointing axis.
var failoverCkptModes = []string{"off", "on"}

// failoverSchedule builds the deterministic crash schedule for one run:
// a crash every MTBF, rotating over the boards, each recovering after
// the swept recovery time, until the crash window closes.
func failoverSchedule(mtbf sim.Duration, recovery sim.Duration) []faults.BoardEvent {
	var events []faults.BoardEvent
	board := 0
	for at := sim.Time(mtbf); at < sim.Time(failoverCrashWindow); at = at.Add(mtbf) {
		events = append(events, faults.BoardEvent{
			Kind:    faults.BoardCrash,
			Board:   board,
			At:      at,
			Recover: at.Add(recovery),
		})
		board = (board + 1) % failoverBoards
	}
	return events
}

// Failover reruns the stress stimulus on a three-board Nimblock cluster
// while boards crash on a fixed MTBF schedule, sweeping recovery time
// and checkpointing. Every submission must end as exactly completed or
// failed (conservation under board deaths); the checkpointed column
// must waste less fabric work than re-execution, which is the
// experiment's headline comparison.
func Failover(cfg Config) (*FailoverResult, error) {
	spec := workload.Spec{Scenario: workload.Stress, Events: cfg.Events}
	seqs := workload.GenerateTest(spec, cfg.Seed)
	if cfg.Sequences < len(seqs) {
		seqs = seqs[:cfg.Sequences]
	}

	type failoverRun struct {
		completed, failed int
		responses         []float64
		stats             health.Stats
		until             sim.Time
	}
	var jobs []func(context.Context) (failoverRun, error)
	for _, mtbf := range FailoverMTBFs {
		mtbf := mtbf
		for _, rec := range FailoverRecoveries {
			rec := rec
			for _, mode := range failoverCkptModes {
				mode := mode
				for si, seq := range seqs {
					si, seq := si, seq
					jobs = append(jobs, func(context.Context) (failoverRun, error) {
						eng := sim.NewEngine()
						defer countEvents(eng)
						hcfg := cfg.HV
						if mode == "on" {
							hcfg.Checkpoint = hv.CheckpointConfig{Enabled: true, Period: 50 * sim.Millisecond}
						}
						ccfg := cluster.Config{
							Boards:      failoverBoards,
							HV:          hcfg,
							Dispatch:    cluster.LeastPending,
							Seed:        cfg.Seed,
							Health:      &health.Options{RetryBudget: 3},
							BoardFaults: failoverSchedule(mtbf, rec),
						}
						cl, err := cluster.New(eng, ccfg, func(b hv.Config) sched.Scheduler {
							return core.New(core.DefaultOptions(), b.Board)
						})
						if err != nil {
							return failoverRun{}, err
						}
						for _, ev := range seq {
							if err := cl.Submit(cachedGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
								return failoverRun{}, err
							}
						}
						res, err := cl.Run()
						if err != nil {
							return failoverRun{}, fmt.Errorf("failover mtbf %v, recovery %v, ckpt %s, sequence %d: %w",
								mtbf, rec, mode, si, err)
						}
						run := failoverRun{stats: cl.FailoverStats(), until: eng.Now()}
						for _, r := range res {
							switch {
							case r.Failed:
								run.failed++
							default:
								run.completed++
								run.responses = append(run.responses, r.Response.Seconds())
							}
						}
						if run.completed+run.failed != len(seq) {
							return failoverRun{}, fmt.Errorf("failover mtbf %v, recovery %v, ckpt %s, sequence %d: %d+%d results for %d submissions",
								mtbf, rec, mode, si, run.completed, run.failed, len(seq))
						}
						return run, nil
					})
				}
			}
		}
	}
	results, err := runJobs(cfg.workers(), jobs)
	if err != nil {
		return nil, err
	}

	out := &FailoverResult{Cells: map[sim.Duration]map[sim.Duration]map[string]FailoverCell{}}
	ji := 0
	for _, mtbf := range FailoverMTBFs {
		out.Cells[mtbf] = map[sim.Duration]map[string]FailoverCell{}
		for _, rec := range FailoverRecoveries {
			out.Cells[mtbf][rec] = map[string]FailoverCell{}
			for _, mode := range failoverCkptModes {
				cell := FailoverCell{}
				var responses []float64
				var elapsed float64
				for range seqs {
					run := results[ji]
					ji++
					cell.Completed += run.completed
					cell.Failed += run.failed
					cell.Deaths += run.stats.Deaths
					cell.Recoveries += run.stats.Recoveries
					cell.WastedWork += run.stats.WastedWork.Seconds()
					cell.MigratedWork += run.stats.MigratedWork.Seconds()
					cell.MigratedItems += run.stats.MigratedItems
					responses = append(responses, run.responses...)
					elapsed += sim.Duration(run.until).Seconds()
				}
				if elapsed > 0 {
					cell.Goodput = float64(cell.Completed) / elapsed
				}
				cell.P99Response = metrics.Percentile(responses, 99)
				out.Cells[mtbf][rec][mode] = cell
			}
		}
	}
	return out, nil
}

// Render prints one table per MTBF.
func (r *FailoverResult) Render() string {
	out := ""
	for _, mtbf := range FailoverMTBFs {
		t := &report.Table{
			Title: fmt.Sprintf("Failover: board MTBF %v (stress, 3 boards, Nimblock, least-pending)", mtbf),
			Header: []string{
				"Recovery", "Ckpt", "Goodput/h", "p99 resp", "Done", "Failed", "Wasted", "Migrated",
			},
		}
		for _, rec := range FailoverRecoveries {
			for _, mode := range failoverCkptModes {
				c := r.Cells[mtbf][rec][mode]
				t.AddRow(
					fmt.Sprintf("%v", rec),
					mode,
					fmt.Sprintf("%.1f", c.Goodput*3600),
					report.FormatSeconds(c.P99Response),
					fmt.Sprintf("%d", c.Completed),
					fmt.Sprintf("%d", c.Failed),
					report.FormatSeconds(c.WastedWork),
					fmt.Sprintf("%s (%d items)", report.FormatSeconds(c.MigratedWork), c.MigratedItems),
				)
			}
		}
		out += t.Render() + "\n"
	}
	return out
}
