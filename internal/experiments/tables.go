package experiments

import (
	"fmt"
	"sort"

	"nimblock/internal/apps"
	"nimblock/internal/fpga"
	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/report"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// Table1 renders the slot and static region utilization (Table 1 of the
// paper). These are properties of the overlay floorplan, reproduced as
// model constants.
func Table1() string {
	t := &report.Table{
		Title:  "Table 1: Slot and Static Region Utilization",
		Header: []string{"Region", "DSP", "LUT", "FF", "Carry", "RAMB18", "RAMB36", "IOBuf"},
	}
	row := func(name string, lo, hi fpga.Resources, ranged bool) {
		f := func(a, b int) string {
			if ranged && a != b {
				return fmt.Sprintf("%d-%d", a, b)
			}
			return fmt.Sprintf("%d", a)
		}
		t.AddRow(name, f(lo.DSP, hi.DSP), f(lo.LUT, hi.LUT), f(lo.FF, hi.FF),
			f(lo.Carry, hi.Carry), f(lo.RAMB18, hi.RAMB18), f(lo.RAMB36, hi.RAMB36), f(lo.IOBuf, hi.IOBuf))
	}
	row("Slot", fpga.SlotResources, fpga.SlotResourcesMax, true)
	row("Static", fpga.StaticResources, fpga.StaticResources, false)
	return t.Render()
}

// Table2 renders the benchmark sizes (Table 2 of the paper), derived from
// the actual task-graphs.
func Table2() string {
	t := &report.Table{
		Title:  "Table 2: Benchmark Sizes",
		Header: []string{"Benchmark", "Abbrev", "Number of Tasks", "Number of Edges"},
	}
	for _, name := range apps.Names() {
		g := apps.MustGraph(name)
		t.AddRow(name, apps.Abbrev[name], g.NumTasks(), g.NumEdges())
	}
	return t.Render()
}

// Table3Result carries benchmark latencies and response times (Table 3).
type Table3Result struct {
	// ExecBaseline is the solo no-sharing execution time per benchmark
	// (first task start to last task completion, batch 5).
	ExecBaseline map[string]sim.Duration
	// Response maps policy -> benchmark -> mean response across the
	// fixed-batch test sequences.
	Response map[string]map[string]sim.Duration
}

// Table3 reproduces the benchmark characteristics experiment: a test
// sequence with fixed batch size 5 and 500 ms between events, reporting
// per-benchmark execution and response times under every algorithm.
func Table3(cfg Config) (*Table3Result, error) {
	out := &Table3Result{
		ExecBaseline: map[string]sim.Duration{},
		Response:     map[string]map[string]sim.Duration{},
	}
	// Solo baseline execution time per benchmark.
	for _, name := range apps.Names() {
		res, err := RunSequence(cfg, "Baseline", workload.Sequence{
			{App: name, Batch: 5, Priority: 3, Arrival: 0},
		})
		if err != nil {
			return nil, err
		}
		out.ExecBaseline[name] = res[0].Retire.Sub(res[0].FirstLaunch)
	}
	// Shared sequences: fixed batch 5, 500 ms delay.
	spec := workload.Spec{
		Scenario:   workload.Standard,
		Events:     cfg.Events,
		FixedBatch: 5,
		FixedGap:   500 * sim.Millisecond,
	}
	data, err := runSpec(cfg, spec, workload.Standard, PolicyNames)
	if err != nil {
		return nil, err
	}
	for _, pol := range PolicyNames {
		byApp := metrics.ByApp(data.Results[pol])
		out.Response[pol] = map[string]sim.Duration{}
		for name, rs := range byApp {
			out.Response[pol][name] = sim.Seconds(metrics.Mean(metrics.Responses(rs)))
		}
	}
	return out, nil
}

// Render prints Table 3 in the paper's layout.
func (r *Table3Result) Render() string {
	t := &report.Table{
		Title:  "Table 3: Benchmark Latencies and Response Times (batch 5, 500ms gaps)",
		Header: append([]string{"Benchmark", "Exec (Baseline)"}, PolicyNames...),
	}
	names := make([]string, 0, len(r.ExecBaseline))
	for n := range r.ExecBaseline {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		row := []any{name, report.FormatSeconds(r.ExecBaseline[name].Seconds())}
		for _, pol := range PolicyNames {
			if d, ok := r.Response[pol][name]; ok {
				row = append(row, report.FormatSeconds(d.Seconds()))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// meanResponse averages response seconds over results.
func meanResponse(rs []hv.Result) float64 {
	return metrics.Mean(metrics.Responses(rs))
}
