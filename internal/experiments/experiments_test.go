package experiments

import (
	"strings"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/interconnect"
	"nimblock/internal/metrics"
	"nimblock/internal/workload"
)

// quick returns a tiny-but-meaningful config for tests.
func quick() Config {
	c := QuickConfig()
	c.Sequences = 2
	c.Events = 6
	return c
}

func TestNewPolicyNames(t *testing.T) {
	board := DefaultConfig().HV.Board
	for _, name := range append(append([]string{}, PolicyNames...), AblationNames...) {
		p, err := NewPolicy(name, board)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("nope", board); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunSequenceRejectsInvalid(t *testing.T) {
	bad := workload.Sequence{{App: "ghost", Batch: 1, Priority: 1}}
	if _, err := RunSequence(quick(), "FCFS", bad); err == nil {
		t.Fatal("invalid sequence accepted")
	}
}

func TestRunScenarioShape(t *testing.T) {
	cfg := quick()
	data, err := RunScenario(cfg, workload.Stress, PolicyNames)
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := cfg.Sequences * cfg.Events
	for _, pol := range PolicyNames {
		if len(data.Results[pol]) != wantEvents {
			t.Fatalf("%s: %d pooled results, want %d", pol, len(data.Results[pol]), wantEvents)
		}
		if len(data.PerSequence[pol]) != cfg.Sequences {
			t.Fatalf("%s: %d sequences", pol, len(data.PerSequence[pol]))
		}
	}
	// Single-slot latencies exist for every pooled event ID.
	for _, r := range data.Results["Nimblock"] {
		if _, ok := data.SingleSlot[r.AppID]; !ok {
			t.Fatalf("missing single-slot latency for event %d", r.AppID)
		}
	}
}

func TestTables(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"Slot", "Static", "122560", "46-92"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2()
	for _, want := range []string{"AlexNet", "38", "184", "LN"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q:\n%s", want, t2)
		}
	}
}

func TestTable3(t *testing.T) {
	cfg := quick()
	res, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Exec baselines exist for all six benchmarks and are ordered as in
	// the paper: DR >> AlexNet > OF > 3DR > LeNet > ImgC.
	e := res.ExecBaseline
	if len(e) != 6 {
		t.Fatalf("exec baselines: %v", e)
	}
	if !(e[apps.DigitRecognition] > e[apps.AlexNet] &&
		e[apps.AlexNet] > e[apps.OpticalFlow] &&
		e[apps.OpticalFlow] > e[apps.Rendering3D] &&
		e[apps.Rendering3D] > e[apps.LeNet] &&
		e[apps.LeNet] > e[apps.ImageCompression]) {
		t.Fatalf("exec ordering wrong: %v", e)
	}
	out := res.Render()
	if !strings.Contains(out, "Nimblock") || !strings.Contains(out, "Baseline") {
		t.Fatalf("render:\n%s", out)
	}
}

// End-to-end over the shared scenario data: Figures 5, 6, 7 and 8.
func TestFigures567And8(t *testing.T) {
	cfg := quick()
	data := map[workload.Scenario]*ScenarioData{}
	for _, sc := range workload.Scenarios() {
		d, err := RunScenario(cfg, sc, PolicyNames)
		if err != nil {
			t.Fatal(err)
		}
		data[sc] = d
	}

	f5, err := Fig5(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range workload.Scenarios() {
		for _, pol := range SharingPolicyNames {
			if f5.Reduction[sc][pol] <= 0 {
				t.Errorf("fig5 %v/%s: reduction %v", sc, pol, f5.Reduction[sc][pol])
			}
		}
		// Headline claim shape: Nimblock beats RR and FCFS on average.
		nim := f5.Reduction[sc]["Nimblock"]
		if nim < f5.Reduction[sc]["RR"] || nim < f5.Reduction[sc]["FCFS"] {
			t.Errorf("fig5 %v: Nimblock %v not best vs RR %v / FCFS %v",
				sc, nim, f5.Reduction[sc]["RR"], f5.Reduction[sc]["FCFS"])
		}
	}
	if !strings.Contains(f5.Render(), "Figure 5") {
		t.Error("fig5 render missing title")
	}

	f6, err := Fig6(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range workload.Scenarios() {
		for _, pol := range SharingPolicyNames {
			tail := f6.Tail[sc][pol]
			if tail[0] <= 0 || tail[1] < tail[0] {
				t.Errorf("fig6 %v/%s: tail %v", sc, pol, tail)
			}
		}
	}
	if !strings.Contains(f6.Render(), "Figure 6") {
		t.Error("fig6 render missing title")
	}

	f7, err := Fig7(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range workload.Scenarios() {
		for _, pol := range PolicyNames {
			pts := f7.Points[sc][pol]
			if len(pts) != 77 {
				t.Fatalf("fig7 %v/%s: %d points", sc, pol, len(pts))
			}
			// Violation rate is nonincreasing in Ds.
			for i := 1; i < len(pts); i++ {
				if pts[i].ViolationRate > pts[i-1].ViolationRate+1e-9 {
					t.Fatalf("fig7 %v/%s: rate increased at Ds=%v", sc, pol, pts[i].Ds)
				}
			}
		}
	}
	if !strings.Contains(f7.Render(), "10% error point") {
		t.Error("fig7 render missing error points")
	}

	f8, err := Fig8(data[workload.Standard])
	if err != nil {
		t.Fatal(err)
	}
	for app, s := range f8.Share {
		sum := s[0] + s[1] + s[2]
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("fig8 %s: shares sum to %v", app, sum)
		}
	}
	if !strings.Contains(f8.Render(), "Figure 8") {
		t.Error("fig8 render missing title")
	}
}

func TestAblationFigures(t *testing.T) {
	cfg := quick()
	data, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f9, err := Fig9(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range AblationBatchSizes {
		if v := f9.Relative[b]["Nimblock"]; v < 0.999 || v > 1.001 {
			t.Errorf("fig9 batch %d: Nimblock normalized to %v, want 1", b, v)
		}
		for _, pol := range AblationNames {
			if f9.Relative[b][pol] <= 0 {
				t.Errorf("fig9 batch %d/%s: %v", b, pol, f9.Relative[b][pol])
			}
		}
	}
	if !strings.Contains(f9.Render(), "Figure 9") {
		t.Error("fig9 render missing title")
	}

	f10, err := Fig10(data)
	if err != nil {
		t.Fatal(err)
	}
	f11, err := Fig11(data)
	if err != nil {
		t.Fatal(err)
	}
	// Where AlexNet appeared, responses and throughputs are positive and
	// consistent (throughput ~ batch/response on average).
	found := false
	for _, b := range AblationBatchSizes {
		for _, pol := range AblationNames {
			resp, ok := f10.Response[b][pol]
			if !ok {
				continue
			}
			found = true
			if resp <= 0 || f11.Throughput[b][pol] <= 0 {
				t.Errorf("batch %d/%s: resp=%v tp=%v", b, pol, resp, f11.Throughput[b][pol])
			}
		}
	}
	if !found {
		t.Skip("AlexNet absent from sampled sequences at this scale")
	}
	if !strings.Contains(f10.Render(), "Figure 10") || !strings.Contains(f11.Render(), "Figure 11") {
		t.Error("fig10/11 render missing titles")
	}
}

func TestMetricsPackageIntegration(t *testing.T) {
	cfg := quick()
	data, err := RunScenario(cfg, workload.Stress, []string{"Baseline", "Nimblock"})
	if err != nil {
		t.Fatal(err)
	}
	red, err := metrics.Reductions(data.Results["Baseline"], data.Results["Nimblock"])
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Mean(red) <= 1 {
		t.Fatalf("Nimblock mean reduction %.2f <= 1 under stress", metrics.Mean(red))
	}
}

func TestDeadlineAblation(t *testing.T) {
	cfg := quick()
	r, err := DeadlineAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range deadlineAblationVariants {
		if len(r.Points[v]) != 77 {
			t.Fatalf("%s: %d points", v, len(r.Points[v]))
		}
	}
	if !strings.Contains(r.Render(), "Figure 7 ablation") {
		t.Error("render missing title")
	}
	if !strings.Contains(r.Summary(), "error point") {
		t.Error("summary missing")
	}
	// Preemption never makes the deadline picture worse at any Ds by a
	// large margin; at the full-scale stimulus it strictly improves the
	// 10% error point (see EXPERIMENTS.md).
	nim, nop := r.ErrorPoint10["Nimblock"], r.ErrorPoint10["NimblockNoPreempt"]
	if nim > 0 && nop > 0 && nim > nop*2 {
		t.Fatalf("preemption degraded 10%% error point: %v vs %v", nim, nop)
	}
}

func TestInterconnectStudy(t *testing.T) {
	cfg := quick()
	r, err := InterconnectStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []workload.Scenario{workload.Standard, workload.Stress} {
		folded := r.MeanResponse[interconnect.Folded][sc]
		ps := r.MeanResponse[interconnect.PSBus][sc]
		noc := r.MeanResponse[interconnect.NoC][sc]
		if folded <= 0 || ps <= 0 || noc <= 0 {
			t.Fatalf("%v: non-positive responses %v %v %v", sc, folded, ps, noc)
		}
		// Explicit transfers can only slow things down relative to the
		// folded model, and the NoC must not be slower than the PS bus.
		if ps < folded-1e-9 {
			t.Errorf("%v: PS bus (%v) faster than folded (%v)", sc, ps, folded)
		}
		if noc > ps+1e-9 {
			t.Errorf("%v: NoC (%v) slower than PS bus (%v)", sc, noc, ps)
		}
	}
	if !strings.Contains(r.Render(), "Interconnect study") {
		t.Error("render missing title")
	}
}

func TestScaleOutStudy(t *testing.T) {
	cfg := quick()
	r, err := ScaleOut(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, boards := range ScaleOutBoards {
		for _, d := range scaleOutDispatches {
			if r.MeanResponse[boards][d] <= 0 {
				t.Fatalf("boards=%d dispatch=%v: %v", boards, d, r.MeanResponse[boards][d])
			}
		}
	}
	// More boards strictly help between 1 and 4 under stress, for every
	// dispatch policy.
	for _, d := range scaleOutDispatches {
		if r.MeanResponse[4][d] >= r.MeanResponse[1][d] {
			t.Errorf("dispatch %v: 4 boards (%v) not better than 1 (%v)",
				d, r.MeanResponse[4][d], r.MeanResponse[1][d])
		}
	}
	if !strings.Contains(r.Render(), "Scale-out study") {
		t.Error("render missing title")
	}
}

func TestSlotSweep(t *testing.T) {
	cfg := quick()
	r, err := SlotSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, slots := range SlotSweepCounts {
		for _, pol := range PolicyNames {
			if r.MeanResponse[slots][pol] <= 0 {
				t.Fatalf("slots=%d %s: %v", slots, pol, r.MeanResponse[slots][pol])
			}
		}
	}
	// Sharing algorithms improve (or hold) with more slots; compare the
	// smallest and largest overlays.
	for _, pol := range SharingPolicyNames {
		small := r.MeanResponse[SlotSweepCounts[0]][pol]
		large := r.MeanResponse[SlotSweepCounts[len(SlotSweepCounts)-1]][pol]
		if large > small*1.05 {
			t.Errorf("%s: more slots hurt: %v -> %v", pol, small, large)
		}
	}
	if !strings.Contains(r.Render(), "Slot sweep") {
		t.Error("render missing title")
	}
}

func TestUtilizationStudy(t *testing.T) {
	cfg := quick()
	r, err := UtilizationStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range PolicyNames {
		u := r.Utilization[pol]
		if u <= 0 || u > 1 {
			t.Fatalf("%s: utilization %v outside (0,1]", pol, u)
		}
		if r.Makespan[pol] <= 0 {
			t.Fatalf("%s: makespan %v", pol, r.Makespan[pol])
		}
	}
	if !strings.Contains(r.Render(), "Utilization study") {
		t.Error("render missing title")
	}
}

func TestOptimalityStudy(t *testing.T) {
	cfg := quick()
	r, err := Optimality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerInstance) == 0 || r.Orders == 0 {
		t.Fatalf("no instances evaluated: %+v", r)
	}
	for i, p := range r.PerInstance {
		if p[0] <= 0 || p[1] <= 0 {
			t.Fatalf("instance %d: %v", i, p)
		}
	}
	// Online scheduling with scheduling-interval granularity should stay
	// within a small factor of the offline exhaustive best.
	if r.MeanGap > 2.5 {
		t.Fatalf("mean optimality gap %.2f too large", r.MeanGap)
	}
	if !strings.Contains(r.Render(), "Optimality study") {
		t.Error("render missing title")
	}
}

func TestPreemptStudy(t *testing.T) {
	cfg := quick()
	r, err := PreemptStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range PreemptVariants {
		if r.MeanResponse[v.Name] <= 0 {
			t.Fatalf("%s: mean %v", v.Name, r.MeanResponse[v.Name])
		}
		if r.TightViolations[v.Name] < 0 || r.TightViolations[v.Name] > 1 {
			t.Fatalf("%s: tight rate %v", v.Name, r.TightViolations[v.Name])
		}
	}
	if !strings.Contains(r.Render(), "Preemption mechanism study") {
		t.Error("render missing title")
	}
}

func TestReconfigSweep(t *testing.T) {
	cfg := quick()
	r, err := ReconfigSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range ReconfigPoints {
		for _, pol := range []string{"PREMA", "Nimblock"} {
			if r.MeanResponse[pt.Name][pol] <= 0 {
				t.Fatalf("%s/%s: %v", pt.Name, pol, r.MeanResponse[pt.Name][pol])
			}
		}
	}
	// Slower reconfiguration hurts both algorithms in absolute terms.
	if r.MeanResponse["~1.3s"]["Nimblock"] <= r.MeanResponse["~20ms"]["Nimblock"] {
		t.Fatal("slower PR did not slow Nimblock")
	}
	if !strings.Contains(r.Render(), "Reconfiguration latency sweep") {
		t.Error("render missing title")
	}
}

func TestLoadSweep(t *testing.T) {
	cfg := quick()
	r, err := LoadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range LoadPoints {
		for _, pol := range loadSweepPolicies {
			if r.MeanResponse[rate][pol] <= 0 {
				t.Fatalf("rate %v %s: %v", rate, pol, r.MeanResponse[rate][pol])
			}
		}
	}
	// Higher offered load can only slow Nimblock down (saturation curve).
	if r.MeanResponse[2.0]["Nimblock"] < r.MeanResponse[0.1]["Nimblock"]*0.8 {
		t.Fatalf("saturation curve inverted: %v vs %v",
			r.MeanResponse[0.1]["Nimblock"], r.MeanResponse[2.0]["Nimblock"])
	}
	if !strings.Contains(r.Render(), "Offered-load sweep") {
		t.Error("render missing title")
	}
}

func TestEstimateAccuracy(t *testing.T) {
	cfg := quick()
	r, err := EstimateAccuracy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RelError) != 6 {
		t.Fatalf("covered %d benchmarks", len(r.RelError))
	}
	for name, e := range r.RelError {
		// HLS estimates skew task latencies by at most 10%, so the
		// propagated makespan error must stay in the same ballpark.
		if e < 0 || e > 0.15 {
			t.Errorf("%s: relative error %v outside [0, 0.15]", name, e)
		}
		if r.Goal[name] < 1 {
			t.Errorf("%s: goal %d", name, r.Goal[name])
		}
	}
	if !strings.Contains(r.Render(), "Estimate accuracy") {
		t.Error("render missing title")
	}
}
