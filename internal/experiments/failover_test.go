package experiments

import (
	"strings"
	"testing"
)

func TestFailoverQuick(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sequences = 1
	cfg.Events = 8
	r, err := Failover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var totalWastedOff, totalWastedOn float64
	var totalMigrated int
	for _, mtbf := range FailoverMTBFs {
		for _, rec := range FailoverRecoveries {
			modes := r.Cells[mtbf][rec]
			if len(modes) != 2 {
				t.Fatalf("mtbf %v recovery %v: %d modes", mtbf, rec, len(modes))
			}
			for mode, c := range modes {
				// Conservation: every cell accounts for the full stimulus.
				if c.Completed+c.Failed != cfg.Events {
					t.Errorf("mtbf %v recovery %v ckpt %s: %d+%d results for %d submissions",
						mtbf, rec, mode, c.Completed, c.Failed, cfg.Events)
				}
				if c.Deaths == 0 {
					t.Errorf("mtbf %v recovery %v ckpt %s: no board ever died", mtbf, rec, mode)
				}
				if c.Recoveries == 0 {
					t.Errorf("mtbf %v recovery %v ckpt %s: no board ever recovered", mtbf, rec, mode)
				}
				if c.Completed > 0 && (c.Goodput <= 0 || c.P99Response <= 0) {
					t.Errorf("mtbf %v recovery %v ckpt %s: goodput %v p99 %v with %d completed",
						mtbf, rec, mode, c.Goodput, c.P99Response, c.Completed)
				}
				if mode == "off" {
					totalWastedOff += c.WastedWork
					if c.MigratedItems != 0 || c.MigratedWork != 0 {
						t.Errorf("mtbf %v recovery %v: migration without checkpoints (%d items)",
							mtbf, rec, c.MigratedItems)
					}
				} else {
					totalWastedOn += c.WastedWork
					totalMigrated += c.MigratedItems
				}
			}
		}
	}
	// The headline comparison: checkpoint migration preserves progress,
	// so the checkpointed column wastes strictly less fabric work
	// overall and actually migrates items.
	if totalMigrated == 0 {
		t.Error("checkpointing on but nothing migrated across the whole sweep")
	}
	if totalWastedOn >= totalWastedOff {
		t.Errorf("checkpoint migration did not reduce wasted work: %v (on) >= %v (off)",
			totalWastedOn, totalWastedOff)
	}
	dump := r.Render()
	if !strings.Contains(dump, "Failover: board MTBF 2s") || !strings.Contains(dump, "p99 resp") {
		t.Fatalf("render missing expected rows:\n%s", dump)
	}
}
