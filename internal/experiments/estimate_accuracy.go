package experiments

import (
	"fmt"
	"math"

	"nimblock/internal/apps"
	"nimblock/internal/hls"
	"nimblock/internal/metrics"
	"nimblock/internal/report"
	"nimblock/internal/saturate"
)

// EstimateAccuracyResult validates the ILP-substitute: how closely the
// estimate-driven makespan analysis (which is all Nimblock's goal
// numbers ever see) predicts the realized makespan on ground-truth
// latencies, per benchmark.
type EstimateAccuracyResult struct {
	// RelError maps benchmark -> |estimated - actual| / actual at the
	// benchmark's goal slot count, batch 5.
	RelError map[string]float64
	// Goal maps benchmark -> the goal number used.
	Goal map[string]int
	// MeanError is the average relative error across benchmarks.
	MeanError float64
}

// EstimateAccuracy sweeps the benchmark suite.
func EstimateAccuracy(cfg Config) (*EstimateAccuracyResult, error) {
	out := &EstimateAccuracyResult{RelError: map[string]float64{}, Goal: map[string]int{}}
	var errs []float64
	const batch = 5
	for _, name := range apps.Names() {
		g := apps.MustGraph(name)
		rep := hls.Analyze(g)
		an, err := saturate.AnalyzeCached(g, rep, batch, cfg.HV.Board, true)
		if err != nil {
			return nil, fmt.Errorf("estimate accuracy %s: %w", name, err)
		}
		k := an.Goal
		est := an.Makespans[k-1]
		act, err := saturate.ActualMakespan(g, batch, k, cfg.HV.Board, true)
		if err != nil {
			return nil, err
		}
		rel := math.Abs(float64(est)-float64(act)) / float64(act)
		out.RelError[name] = rel
		out.Goal[name] = k
		errs = append(errs, rel)
	}
	out.MeanError = metrics.Mean(errs)
	return out, nil
}

// Render prints the validation.
func (r *EstimateAccuracyResult) Render() string {
	t := &report.Table{
		Title:  "Estimate accuracy: goal-number analysis vs realized makespan (batch 5)",
		Header: []string{"Benchmark", "Goal slots", "Relative error"},
	}
	for _, name := range apps.Names() {
		t.AddRow(name, r.Goal[name], report.FormatPercent(r.RelError[name]))
	}
	t.AddRow("mean", "", report.FormatPercent(r.MeanError))
	return t.Render()
}
