package experiments

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// The simulator stays deliberately single-threaded (bit-for-bit
// reproducible runs); parallelism lives here, one layer up. Every
// (scenario, sequence, policy) run builds its own sim.Engine and is fully
// independent, so the harness fans runs across a GOMAXPROCS-bounded
// worker pool and assembles results in deterministic input order —
// byte-identical tables and figures to the serial path.

// EnvParallel is the environment variable overriding the worker count
// when Config.Workers is zero. Set NIMBLOCK_PARALLEL=1 to force the
// serial path; unset (or invalid) means one worker per GOMAXPROCS.
const EnvParallel = "NIMBLOCK_PARALLEL"

// workers resolves the worker count for this config: Workers if positive,
// else NIMBLOCK_PARALLEL, else GOMAXPROCS.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	if s := os.Getenv(EnvParallel); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// runJobs executes the jobs across at most workers goroutines and returns
// their results in input order, regardless of completion order. The first
// error (lowest job index among failures) is returned and cancels the
// shared context so workers stop pulling new jobs; in-flight simulations
// run to completion (a sim.Engine cannot be interrupted mid-run, and its
// result is simply discarded).
//
// With workers <= 1 the jobs run serially on the calling goroutine — the
// reference path the determinism tests compare against.
func runJobs[T any](workers int, jobs []func(context.Context) (T, error)) ([]T, error) {
	results := make([]T, len(jobs))
	if workers > len(jobs) {
		workers = len(jobs)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if workers <= 1 {
		for i, job := range jobs {
			r, err := job(ctx)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next    atomic.Int64 // index of the next unclaimed job
		mu      sync.Mutex
		failIdx = -1
		failErr error
		wg      sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if failIdx == -1 || i < failIdx {
			failIdx, failErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) || ctx.Err() != nil {
					return
				}
				r, err := jobs[i](ctx)
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		return nil, failErr
	}
	return results, nil
}
