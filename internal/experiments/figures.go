package experiments

import (
	"fmt"
	"sort"

	"nimblock/internal/apps"
	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/report"
	"nimblock/internal/workload"
)

// Fig5Result holds average response-time reductions normalized to the
// baseline (Figure 5). Following Section 5.2 ("we analyze the data using
// the average of the response times of the evaluated events"), each
// sequence contributes the ratio of its mean baseline response to its
// mean algorithm response; sequences are then averaged. Mean-of-ratios
// would let one short application behind a 1000-second queue dominate
// the figure.
type Fig5Result struct {
	// Reduction maps scenario -> policy -> mean reduction factor.
	Reduction map[workload.Scenario]map[string]float64
	// CI maps scenario -> policy -> bootstrap 95% confidence interval
	// over the per-sequence reduction factors.
	CI map[workload.Scenario]map[string]metrics.CI
}

// Fig5 runs (or reuses) the three congestion scenarios and computes the
// average relative response-time reduction of each sharing algorithm.
func Fig5(data map[workload.Scenario]*ScenarioData) (*Fig5Result, error) {
	out := &Fig5Result{
		Reduction: map[workload.Scenario]map[string]float64{},
		CI:        map[workload.Scenario]map[string]metrics.CI{},
	}
	for _, sc := range workload.Scenarios() {
		d, ok := data[sc]
		if !ok {
			return nil, fmt.Errorf("fig5: missing scenario %v", sc)
		}
		out.Reduction[sc] = map[string]float64{}
		out.CI[sc] = map[string]metrics.CI{}
		for _, pol := range SharingPolicyNames {
			var perSeq []float64
			for si := range d.PerSequence[pol] {
				base := meanResponse(d.PerSequence["Baseline"][si])
				algo := meanResponse(d.PerSequence[pol][si])
				if base <= 0 || algo <= 0 {
					return nil, fmt.Errorf("fig5: empty sequence %d for %s", si, pol)
				}
				perSeq = append(perSeq, base/algo)
			}
			out.Reduction[sc][pol] = metrics.Mean(perSeq)
			ci, err := metrics.BootstrapMeanCI(perSeq, 1000, 0.95, 7)
			if err != nil {
				return nil, err
			}
			out.CI[sc][pol] = ci
		}
	}
	return out, nil
}

// Render prints Figure 5's bars as a table.
func (r *Fig5Result) Render() string {
	t := &report.Table{
		Title:  "Figure 5: Avg relative response-time reduction vs baseline (higher is better)",
		Header: append([]string{"Scenario"}, SharingPolicyNames...),
	}
	for _, sc := range workload.Scenarios() {
		row := []any{sc.String()}
		for _, pol := range SharingPolicyNames {
			ci := r.CI[sc][pol]
			row = append(row, fmt.Sprintf("%s [%.2f, %.2f]",
				report.FormatFactor(r.Reduction[sc][pol]), ci.Lo, ci.Hi))
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// Fig6Result holds tail response times normalized to the baseline
// (Figure 6): the 95th/99th percentile of per-event normalized response
// (algorithm/baseline; lower is better).
type Fig6Result struct {
	// Tail maps scenario -> policy -> [p95, p99] normalized response.
	Tail map[workload.Scenario]map[string][2]float64
}

// Fig6 computes tail response statistics from the shared scenario data.
func Fig6(data map[workload.Scenario]*ScenarioData) (*Fig6Result, error) {
	out := &Fig6Result{Tail: map[workload.Scenario]map[string][2]float64{}}
	for _, sc := range workload.Scenarios() {
		d, ok := data[sc]
		if !ok {
			return nil, fmt.Errorf("fig6: missing scenario %v", sc)
		}
		out.Tail[sc] = map[string][2]float64{}
		for _, pol := range SharingPolicyNames {
			var all []float64
			for si := range d.PerSequence[pol] {
				norm, err := metrics.NormalizedResponses(d.PerSequence["Baseline"][si], d.PerSequence[pol][si])
				if err != nil {
					return nil, err
				}
				all = append(all, norm...)
			}
			out.Tail[sc][pol] = [2]float64{
				metrics.Percentile(all, 95),
				metrics.Percentile(all, 99),
			}
		}
	}
	return out, nil
}

// Render prints Figure 6's bars as a table.
func (r *Fig6Result) Render() string {
	t := &report.Table{
		Title:  "Figure 6: Tail response time normalized to baseline (lower is better)",
		Header: append([]string{"Scenario-pctile"}, SharingPolicyNames...),
	}
	for _, sc := range workload.Scenarios() {
		for pi, pct := range []string{"95", "99"} {
			row := []any{fmt.Sprintf("%s-%s", sc, pct)}
			for _, pol := range SharingPolicyNames {
				row = append(row, report.FormatFloat(r.Tail[sc][pol][pi]))
			}
			t.AddRow(row...)
		}
	}
	return t.Render()
}

// Fig7Result holds the deadline failure sweeps (Figure 7a/b/c).
type Fig7Result struct {
	// Points maps scenario -> policy -> sweep over Ds.
	Points map[workload.Scenario]map[string][]metrics.DeadlinePoint
	// ErrorPoint10 maps scenario -> policy -> the 10% error point Ds
	// (-1 if never reached).
	ErrorPoint10 map[workload.Scenario]map[string]float64
}

// Fig7 sweeps deadline scaling factors for high-priority applications.
func Fig7(data map[workload.Scenario]*ScenarioData) (*Fig7Result, error) {
	spec := metrics.DefaultDeadlineSpec()
	out := &Fig7Result{
		Points:       map[workload.Scenario]map[string][]metrics.DeadlinePoint{},
		ErrorPoint10: map[workload.Scenario]map[string]float64{},
	}
	for _, sc := range workload.Scenarios() {
		d, ok := data[sc]
		if !ok {
			return nil, fmt.Errorf("fig7: missing scenario %v", sc)
		}
		out.Points[sc] = map[string][]metrics.DeadlinePoint{}
		out.ErrorPoint10[sc] = map[string]float64{}
		for _, pol := range PolicyNames {
			pts, err := metrics.DeadlineSweep(d.Results[pol], d.SingleSlot, spec)
			if err != nil {
				return nil, err
			}
			out.Points[sc][pol] = pts
			out.ErrorPoint10[sc][pol] = metrics.ErrorPoint(pts, 0.10)
		}
	}
	return out, nil
}

// Render prints each scenario's sweep as series plus the error points.
func (r *Fig7Result) Render() string {
	var out string
	for _, sc := range workload.Scenarios() {
		var series []report.Series
		for _, pol := range PolicyNames {
			pts := r.Points[sc][pol]
			s := report.Series{Name: pol}
			for _, p := range pts {
				s.X = append(s.X, p.Ds)
				s.Y = append(s.Y, p.ViolationRate)
			}
			series = append(series, s)
		}
		out += report.RenderSeries(fmt.Sprintf("Figure 7 (%s): deadline failure rate vs Ds (high priority)", sc), "Ds", series)
		t := &report.Table{Header: append([]string{"10% error point"}, PolicyNames...)}
		row := []any{sc.String()}
		for _, pol := range PolicyNames {
			ep := r.ErrorPoint10[sc][pol]
			if ep < 0 {
				row = append(row, ">20")
			} else {
				row = append(row, report.FormatFloat(ep))
			}
		}
		t.AddRow(row...)
		out += t.Render() + "\n"
	}
	return out
}

// Fig8Result holds the time breakdown under Nimblock (Figure 8): run,
// partial reconfiguration, and wait time as proportions of their sum.
type Fig8Result struct {
	// Share maps benchmark -> [run, reconfig, wait] fractions (sum 1).
	Share map[string][3]float64
}

// Fig8 computes the proportion breakdown from the standard-scenario
// Nimblock results.
func Fig8(data *ScenarioData) (*Fig8Result, error) {
	rs, ok := data.Results["Nimblock"]
	if !ok {
		return nil, fmt.Errorf("fig8: scenario data lacks Nimblock results")
	}
	out := &Fig8Result{Share: map[string][3]float64{}}
	sums := map[string][3]float64{}
	for _, r := range rs {
		s := sums[r.App]
		s[0] += r.Run.Seconds()
		s[1] += r.Reconfig.Seconds()
		s[2] += r.Wait.Seconds()
		sums[r.App] = s
	}
	for app, s := range sums {
		total := s[0] + s[1] + s[2]
		if total <= 0 {
			continue
		}
		out.Share[app] = [3]float64{s[0] / total, s[1] / total, s[2] / total}
	}
	return out, nil
}

// Render prints Figure 8's stacked bars as a table.
func (r *Fig8Result) Render() string {
	t := &report.Table{
		Title:  "Figure 8: Run / PR / Wait time as proportion of total (Nimblock, standard)",
		Header: []string{"Benchmark", "Run", "PR", "Wait"},
	}
	names := make([]string, 0, len(r.Share))
	for n := range r.Share {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := r.Share[n]
		t.AddRow(n, report.FormatPercent(s[0]), report.FormatPercent(s[1]), report.FormatPercent(s[2]))
	}
	return t.Render()
}

// AblationBatchSizes are the fixed batch sizes swept in Figures 9-11.
var AblationBatchSizes = []int{1, 3, 5, 7, 10}

// AblationData holds stress-test runs with fixed batch sizes for the four
// Nimblock variants (Section 5.6).
type AblationData struct {
	// PerBatch maps batch size -> variant -> pooled results.
	PerBatch map[int]map[string][]hv.Result
}

// RunAblation executes the ablation stimulus: stress-test arrival gaps,
// random benchmarks and priorities, fixed batch size per run. All batch
// sizes are submitted to the worker pool together, so every (batch,
// sequence, variant) simulation runs in parallel.
func RunAblation(cfg Config) (*AblationData, error) {
	runs := make([]specRun, 0, len(AblationBatchSizes))
	for _, batch := range AblationBatchSizes {
		spec := workload.Spec{Scenario: workload.Stress, Events: cfg.Events, FixedBatch: batch}
		runs = append(runs, specRun{cfg: cfg, spec: spec, scenario: workload.Stress, policies: AblationNames})
	}
	datas, err := runSpecs(runs)
	if err != nil {
		return nil, err
	}
	out := &AblationData{PerBatch: map[int]map[string][]hv.Result{}}
	for i, batch := range AblationBatchSizes {
		out.PerBatch[batch] = datas[i].Results
	}
	return out, nil
}

// Fig9Result holds relative response times normalized to full Nimblock
// (Figure 9): mean response(variant)/mean response(Nimblock) per batch.
type Fig9Result struct {
	// Relative maps batch -> variant -> normalized mean response.
	Relative map[int]map[string]float64
}

// Fig9 computes the ablation normalization.
func Fig9(data *AblationData) (*Fig9Result, error) {
	out := &Fig9Result{Relative: map[int]map[string]float64{}}
	for batch, byPol := range data.PerBatch {
		base := meanResponse(byPol["Nimblock"])
		if base <= 0 {
			return nil, fmt.Errorf("fig9: no Nimblock results for batch %d", batch)
		}
		out.Relative[batch] = map[string]float64{}
		for _, pol := range AblationNames {
			out.Relative[batch][pol] = meanResponse(byPol[pol]) / base
		}
	}
	return out, nil
}

// Render prints Figure 9.
func (r *Fig9Result) Render() string {
	t := &report.Table{
		Title:  "Figure 9: Relative response time, stress test, normalized to Nimblock (lower is better)",
		Header: append([]string{"Batch"}, AblationNames...),
	}
	for _, b := range AblationBatchSizes {
		row := []any{fmt.Sprintf("%d", b)}
		for _, pol := range AblationNames {
			row = append(row, report.FormatFloat(r.Relative[b][pol]))
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// Fig10Result holds AlexNet response times under different batch sizes
// and ablation variants (Figure 10), in seconds.
type Fig10Result struct {
	Response map[int]map[string]float64
}

// Fig10 extracts AlexNet events from the ablation runs.
func Fig10(data *AblationData) (*Fig10Result, error) {
	out := &Fig10Result{Response: map[int]map[string]float64{}}
	for batch, byPol := range data.PerBatch {
		out.Response[batch] = map[string]float64{}
		for _, pol := range AblationNames {
			an := metrics.ByApp(byPol[pol])[apps.AlexNet]
			if len(an) == 0 {
				continue
			}
			out.Response[batch][pol] = meanResponse(an)
		}
	}
	return out, nil
}

// Render prints Figure 10.
func (r *Fig10Result) Render() string {
	t := &report.Table{
		Title:  "Figure 10: AlexNet response time (s) under different batch sizes",
		Header: append([]string{"Batch"}, AblationNames...),
	}
	for _, b := range AblationBatchSizes {
		row := []any{fmt.Sprintf("%d", b)}
		for _, pol := range AblationNames {
			if v, ok := r.Response[b][pol]; ok {
				row = append(row, report.FormatSeconds(v))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// Fig11Result holds AlexNet throughput (items/s) per batch and variant
// (Figure 11).
type Fig11Result struct {
	Throughput map[int]map[string]float64
}

// Fig11 computes AlexNet throughput from the ablation runs.
func Fig11(data *AblationData) (*Fig11Result, error) {
	out := &Fig11Result{Throughput: map[int]map[string]float64{}}
	for batch, byPol := range data.PerBatch {
		out.Throughput[batch] = map[string]float64{}
		for _, pol := range AblationNames {
			an := metrics.ByApp(byPol[pol])[apps.AlexNet]
			if len(an) == 0 {
				continue
			}
			var tp []float64
			for _, r := range an {
				tp = append(tp, r.Throughput())
			}
			out.Throughput[batch][pol] = metrics.Mean(tp)
		}
	}
	return out, nil
}

// Render prints Figure 11.
func (r *Fig11Result) Render() string {
	t := &report.Table{
		Title:  "Figure 11: AlexNet throughput (items/s) under different batch sizes",
		Header: append([]string{"Batch"}, AblationNames...),
	}
	for _, b := range AblationBatchSizes {
		row := []any{fmt.Sprintf("%d", b)}
		for _, pol := range AblationNames {
			if v, ok := r.Throughput[b][pol]; ok {
				row = append(row, report.FormatFloat(v))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.Render()
}
