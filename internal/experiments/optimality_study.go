package experiments

import (
	"fmt"
	"math/rand"

	"nimblock/internal/apps"
	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/optsched"
	"nimblock/internal/report"
	"nimblock/internal/sim"
)

// OptimalityResult measures the price of online scheduling: Nimblock
// never sees the future, while DML-style offline solvers know every
// arrival in advance. Instances are kept small enough to enumerate the
// full eager-schedule space, exactly the regime where the paper says
// ILP-based solutions are viable.
type OptimalityResult struct {
	// PerInstance lists, per random instance, [offline-best, nimblock]
	// mean response seconds.
	PerInstance [][2]float64
	// MeanGap is the average nimblock/offline-best ratio.
	MeanGap float64
	// Orders is the total number of schedules enumerated.
	Orders int
}

// smallPool holds the 3-task chains, keeping interleaving counts tiny.
var smallPool = []string{apps.LeNet, apps.Rendering3D, apps.DigitRecognition}

// Optimality compares Nimblock against the exhaustive offline best on a
// set of small random instances.
func Optimality(cfg Config) (*OptimalityResult, error) {
	out := &OptimalityResult{}
	instances := cfg.Sequences
	if instances > 6 {
		instances = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var gaps []float64
	for i := 0; i < instances; i++ {
		nJobs := 2 + rng.Intn(2) // 2-3 jobs of 3 tasks: <= 1680 orders
		var jobs []optsched.Job
		for j := 0; j < nJobs; j++ {
			name := smallPool[rng.Intn(len(smallPool)-1)] // exclude DR for runtime
			jobs = append(jobs, optsched.Job{
				Graph:    apps.MustGraph(name),
				Batch:    1 + rng.Intn(5),
				Priority: 3,
				Arrival:  sim.Time(rng.Intn(500)) * sim.Time(sim.Millisecond),
			})
		}
		best, visited, err := optsched.Best(jobs, cfg.HV, 2000)
		if err != nil {
			return nil, fmt.Errorf("optimality instance %d: %w", i, err)
		}
		out.Orders += visited
		nim, err := runNimblockJobs(cfg, jobs)
		if err != nil {
			return nil, err
		}
		out.PerInstance = append(out.PerInstance, [2]float64{best.MeanResponse.Seconds(), nim.Seconds()})
		gaps = append(gaps, float64(nim)/float64(best.MeanResponse))
	}
	out.MeanGap = metrics.Mean(gaps)
	return out, nil
}

// runNimblockJobs replays an optsched instance under online Nimblock.
func runNimblockJobs(cfg Config, jobs []optsched.Job) (sim.Duration, error) {
	pol, err := NewPolicy("Nimblock", cfg.HV.Board)
	if err != nil {
		return 0, err
	}
	eng := sim.NewEngine()
	defer countEvents(eng)
	h, err := hv.New(eng, cfg.HV, pol)
	if err != nil {
		return 0, err
	}
	for _, j := range jobs {
		if err := h.Submit(j.Graph, j.Batch, j.Priority, j.Arrival); err != nil {
			return 0, err
		}
	}
	res, err := h.Run()
	if err != nil {
		return 0, err
	}
	var total sim.Duration
	for _, r := range res {
		total += r.Response
	}
	return total / sim.Duration(len(res)), nil
}

// Render prints the study.
func (r *OptimalityResult) Render() string {
	t := &report.Table{
		Title:  "Optimality study: online Nimblock vs exhaustive offline eager schedule",
		Header: []string{"Instance", "Offline best", "Nimblock", "Gap"},
	}
	for i, p := range r.PerInstance {
		t.AddRow(fmt.Sprintf("%d", i+1),
			report.FormatSeconds(p[0]), report.FormatSeconds(p[1]),
			report.FormatFactor(p[1]/p[0]))
	}
	t.AddRow("mean gap", "", "", report.FormatFactor(r.MeanGap))
	return t.Render()
}
