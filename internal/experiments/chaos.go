package experiments

import (
	"context"
	"fmt"

	"nimblock/internal/faults"
	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/report"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// ChaosRates are the per-attempt reconfiguration fault probabilities
// swept by the chaos experiment; 0 is the fault-free control.
var ChaosRates = []float64{0, 0.05, 0.1, 0.2}

// ChaosCell aggregates one (fault rate, policy) combination across
// every sequence of the stimulus.
type ChaosCell struct {
	// MeanResponse is the mean response time in seconds; the spread
	// against the rate-0 row is the price of the injected faults.
	MeanResponse float64
	// FaultsInjected, Retries, and Recovered pool the recovery
	// accounting of all sequences.
	FaultsInjected int
	Retries        int
	Recovered      int
	// WatchdogKills and SlotsOffline count the heavier recovery paths
	// (uniform transient faults exercise neither; plan-driven scenarios
	// do).
	WatchdogKills int
	SlotsOffline  int
	// WastedWork is fabric seconds burned on lost executions.
	WastedWork float64
	// EffectiveSlots is the mean time-weighted usable slot count.
	EffectiveSlots float64
}

// ChaosResult reports the fault-rate sweep.
type ChaosResult struct {
	// Cells maps fault rate -> policy -> aggregate.
	Cells map[float64]map[string]ChaosCell
}

// Chaos reruns the stress stimulus under every policy while injecting
// uniform-random reconfiguration faults at each swept rate, with the
// recovery stack (retries with backoff, watchdog) armed. Every run must
// complete: the experiment demonstrates that fault handling degrades
// response time smoothly instead of wedging any scheduler. All (rate,
// policy, sequence) runs fan across the worker pool; each run builds its
// own engine and injector, and aggregation follows input order so the
// sweep is byte-identical to the serial path.
func Chaos(cfg Config) (*ChaosResult, error) {
	cfgs := make([]Config, len(ChaosRates))
	for i, rate := range ChaosRates {
		c := cfg
		if rate > 0 {
			plan := faults.Uniform(rate, cfg.Seed)
			factory, err := plan.Factory()
			if err != nil {
				return nil, err
			}
			c.HV.Board.NewInjector = factory
			// Enough retries that a run never fails outright at the
			// swept rates; backoff still makes each fault cost time.
			c.HV.Board.MaxRetries = 25
		}
		c.HV.WatchdogFactor = chaosWatchdogFactor
		c.HV.WatchdogGrace = chaosWatchdogGrace
		cfgs[i] = c
	}

	spec := workload.Spec{Scenario: workload.Stress, Events: cfg.Events}
	seqs := workload.GenerateTest(spec, cfg.Seed)
	if cfg.Sequences < len(seqs) {
		seqs = seqs[:cfg.Sequences]
	}

	type chaosRun struct {
		res   []hv.Result
		rec   hv.RecoveryStats
		until sim.Time
	}
	var jobs []func(context.Context) (chaosRun, error)
	for rj, rate := range ChaosRates {
		c, rate := cfgs[rj], rate
		for _, pol := range PolicyNames {
			pol := pol
			for si, seq := range seqs {
				si, seq := si, seq
				jobs = append(jobs, func(context.Context) (chaosRun, error) {
					res, rec, until, err := runChaosSequence(c, pol, seq)
					if err != nil {
						return chaosRun{}, fmt.Errorf("chaos rate %v, sequence %d, policy %s: %w", rate, si, pol, err)
					}
					return chaosRun{res: res, rec: rec, until: until}, nil
				})
			}
		}
	}
	results, err := runJobs(cfg.workers(), jobs)
	if err != nil {
		return nil, err
	}

	out := &ChaosResult{Cells: map[float64]map[string]ChaosCell{}}
	ji := 0
	for _, rate := range ChaosRates {
		cells := map[string]ChaosCell{}
		for _, pol := range PolicyNames {
			cell := ChaosCell{}
			var responses []float64
			var effective []float64
			for range seqs {
				run := results[ji]
				ji++
				for _, r := range run.res {
					responses = append(responses, r.Response.Seconds())
				}
				cell.FaultsInjected += run.rec.FaultsInjected
				cell.Retries += run.rec.Retries
				cell.Recovered += run.rec.Recovered
				cell.WatchdogKills += run.rec.WatchdogKills
				cell.SlotsOffline += run.rec.SlotsOffline
				cell.WastedWork += run.rec.WastedWork.Seconds()
				effective = append(effective, metrics.EffectiveSlots(run.rec.Timeline, run.until))
			}
			cell.MeanResponse = metrics.Mean(responses)
			cell.EffectiveSlots = metrics.Mean(effective)
			cells[pol] = cell
		}
		out.Cells[rate] = cells
	}
	return out, nil
}

const (
	chaosWatchdogFactor = 4
	chaosWatchdogGrace  = 50 * sim.Millisecond
)

// runChaosSequence is RunSequence plus recovery statistics and the
// retirement time of the last event (the effective-slots window).
func runChaosSequence(cfg Config, policy string, seq workload.Sequence) ([]hv.Result, hv.RecoveryStats, sim.Time, error) {
	if err := seq.Validate(); err != nil {
		return nil, hv.RecoveryStats{}, 0, err
	}
	pol, err := NewPolicy(policy, cfg.HV.Board)
	if err != nil {
		return nil, hv.RecoveryStats{}, 0, err
	}
	eng := sim.NewEngine()
	defer countEvents(eng)
	h, err := hv.New(eng, cfg.HV, pol)
	if err != nil {
		return nil, hv.RecoveryStats{}, 0, err
	}
	for _, ev := range seq {
		if err := h.Submit(cachedGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
			return nil, hv.RecoveryStats{}, 0, err
		}
	}
	res, err := h.Run()
	if err != nil {
		return nil, hv.RecoveryStats{}, 0, err
	}
	return res, h.Recovery(), eng.Now(), nil
}

// Render prints one table per swept rate.
func (r *ChaosResult) Render() string {
	out := ""
	for _, rate := range ChaosRates {
		t := &report.Table{
			Title: fmt.Sprintf("Chaos: fault rate %.0f%% (stress)", 100*rate),
			Header: []string{
				"Policy", "Mean resp", "Faults", "Recovered", "Wasted", "Eff. slots",
			},
		}
		for _, pol := range PolicyNames {
			c := r.Cells[rate][pol]
			t.AddRow(pol,
				report.FormatSeconds(c.MeanResponse),
				fmt.Sprintf("%d", c.FaultsInjected),
				fmt.Sprintf("%d", c.Recovered),
				report.FormatSeconds(c.WastedWork),
				fmt.Sprintf("%.1f", c.EffectiveSlots),
			)
		}
		out += t.Render() + "\n"
	}
	return out
}
