package experiments

import (
	"fmt"

	"nimblock/internal/metrics"
	"nimblock/internal/report"
	"nimblock/internal/workload"
)

// DeadlineAblationResult isolates batch-preemption's contribution to
// deadline protection, the mechanism Section 5.4 credits for Nimblock's
// low violation rates. It sweeps the stress-test deadline grid for the
// full algorithm and the NoPreempt ablation.
type DeadlineAblationResult struct {
	// Points maps variant -> deadline sweep (high-priority apps).
	Points map[string][]metrics.DeadlinePoint
	// ErrorPoint10 maps variant -> 10% error point (-1 if unreached).
	ErrorPoint10 map[string]float64
}

// deadlineAblationVariants are the two variants compared.
var deadlineAblationVariants = []string{"Nimblock", "NimblockNoPreempt"}

// DeadlineAblation runs the stress scenario under Nimblock with and
// without preemption and sweeps deadline scaling factors.
func DeadlineAblation(cfg Config) (*DeadlineAblationResult, error) {
	data, err := RunScenario(cfg, workload.Stress, deadlineAblationVariants)
	if err != nil {
		return nil, err
	}
	spec := metrics.DefaultDeadlineSpec()
	out := &DeadlineAblationResult{
		Points:       map[string][]metrics.DeadlinePoint{},
		ErrorPoint10: map[string]float64{},
	}
	for _, v := range deadlineAblationVariants {
		pts, err := metrics.DeadlineSweep(data.Results[v], data.SingleSlot, spec)
		if err != nil {
			return nil, err
		}
		out.Points[v] = pts
		out.ErrorPoint10[v] = metrics.ErrorPoint(pts, 0.10)
	}
	return out, nil
}

// Render prints the sweep and error points.
func (r *DeadlineAblationResult) Render() string {
	var series []report.Series
	for _, v := range deadlineAblationVariants {
		s := report.Series{Name: v}
		for _, p := range r.Points[v] {
			s.X = append(s.X, p.Ds)
			s.Y = append(s.Y, p.ViolationRate)
		}
		series = append(series, s)
	}
	out := report.RenderSeries("Figure 7 ablation: preemption's deadline impact (stress, high priority)", "Ds", series)
	t := &report.Table{Header: append([]string{"10% error point"}, deadlineAblationVariants...)}
	row := []any{"stress"}
	for _, v := range deadlineAblationVariants {
		ep := r.ErrorPoint10[v]
		if ep < 0 {
			row = append(row, ">20")
		} else {
			row = append(row, report.FormatFloat(ep))
		}
	}
	t.AddRow(row...)
	return out + t.Render()
}

// Summary gives the one-line comparison for reports.
func (r *DeadlineAblationResult) Summary() string {
	return fmt.Sprintf("10%% error point: Nimblock Ds=%s vs NoPreempt Ds=%s",
		report.FormatFloat(r.ErrorPoint10["Nimblock"]),
		report.FormatFloat(r.ErrorPoint10["NimblockNoPreempt"]))
}
