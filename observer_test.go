package nimblock_test

import (
	"sync"
	"testing"
	"time"

	"nimblock"
)

// countingObserver tallies events by kind; shared across boards in the
// cluster test, so it locks.
type countingObserver struct {
	mu    sync.Mutex
	kinds map[string]int
}

func (c *countingObserver) Observe(e nimblock.TraceEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.kinds == nil {
		c.kinds = map[string]int{}
	}
	c.kinds[e.Kind]++
}

func (c *countingObserver) count(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kinds[kind]
}

func TestSystemObserverSeesLifecycle(t *testing.T) {
	o := &countingObserver{}
	cfg := nimblock.DefaultConfig()
	cfg.Observer = o
	sys, err := nimblock.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := nimblock.Benchmark(nimblock.LeNet)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Submit(app, 3, nimblock.PriorityMedium, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if o.count("arrival") != 1 || o.count("retire") != 1 {
		t.Fatalf("lifecycle events wrong: %v", o.kinds)
	}
	if o.count("item-start") == 0 || o.count("reconfig-done") == 0 {
		t.Fatalf("execution events missing: %v", o.kinds)
	}
	// Tracing was off: the live stream is independent of the stored log.
	if sys.TraceDump() != "" {
		t.Fatal("trace log populated without EnableTrace")
	}
}

func TestObserverFuncAndClusterFanIn(t *testing.T) {
	var mu sync.Mutex
	events := 0
	ccfg := nimblock.DefaultClusterConfig()
	ccfg.Observer = nimblock.ObserverFunc(func(e nimblock.TraceEvent) {
		mu.Lock()
		events++
		mu.Unlock()
		if e.At < 0 {
			t.Errorf("negative event time %v", e.At)
		}
	})
	cl, err := nimblock.NewCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := nimblock.Benchmark(nimblock.AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := cl.Submit(app, 2, nimblock.PriorityLow, time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("cluster observer saw nothing")
	}
}
