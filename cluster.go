package nimblock

import (
	"fmt"
	"time"

	"nimblock/internal/cluster"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
)

// DispatchPolicy selects how a cluster places arriving applications.
type DispatchPolicy string

// Available dispatch policies.
const (
	// DispatchRoundRobin cycles through boards.
	DispatchRoundRobin DispatchPolicy = "round-robin"
	// DispatchLeastLoaded picks the board with the least estimated
	// outstanding work.
	DispatchLeastLoaded DispatchPolicy = "least-loaded"
	// DispatchLeastPending picks the board with the fewest pending apps.
	DispatchLeastPending DispatchPolicy = "least-pending"
	// DispatchRandom picks a seeded-random board.
	DispatchRandom DispatchPolicy = "random"
)

// ClusterConfig parameterizes a multi-FPGA deployment: Boards identical
// FPGAs, each scheduled independently by Config.Algorithm, fronted by an
// arrival-time dispatcher.
type ClusterConfig struct {
	// Config applies to every board.
	Config
	// Boards is the number of FPGAs (default 2).
	Boards int
	// Dispatch places arrivals (default DispatchLeastLoaded).
	Dispatch DispatchPolicy
	// Seed drives DispatchRandom.
	Seed int64
	// Admission, when non-nil, bounds what the cluster accepts; rejected
	// submissions come back from Run as Rejected results, not errors.
	Admission *AdmissionConfig
}

// DefaultClusterConfig is a two-board, least-loaded Nimblock cluster.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Config:   DefaultConfig(),
		Boards:   2,
		Dispatch: DispatchLeastLoaded,
	}
}

// ClusterResult is a Result annotated with the board that served it.
// When Rejected is set the submission was turned away at admission:
// Board is -1, RejectReason names the outcome ("shed", "deadline",
// "quota"), and only the identifying fields are meaningful.
type ClusterResult struct {
	Result
	Board        int
	Rejected     bool
	RejectReason string
}

// Cluster is a multi-FPGA system: Submit applications, then Run.
type Cluster struct {
	eng *sim.Engine
	cl  *cluster.Cluster
}

// NewCluster builds a multi-FPGA deployment.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Boards == 0 {
		cfg.Boards = 2
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = AlgoNimblock
	}
	var d cluster.Dispatch
	switch cfg.Dispatch {
	case DispatchRoundRobin:
		d = cluster.RoundRobin
	case DispatchLeastLoaded, "":
		d = cluster.LeastLoaded
	case DispatchLeastPending:
		d = cluster.LeastPending
	case DispatchRandom:
		d = cluster.RandomBoard
	default:
		return nil, fmt.Errorf("nimblock: unknown dispatch policy %q", cfg.Dispatch)
	}
	hcfg := hv.DefaultConfig()
	if cfg.Slots > 0 {
		hcfg.Board.Slots = cfg.Slots
	}
	if cfg.SchedInterval > 0 {
		hcfg.SchedInterval = sim.FromStd(cfg.SchedInterval)
	}
	if cfg.Horizon > 0 {
		hcfg.Horizon = sim.Time(sim.FromStd(cfg.Horizon))
	}
	// One observer watches every board; events carry board-local app IDs,
	// so observers aggregating per-app state should key on (App, AppID).
	hcfg.Observer = wrapObserver(cfg.Observer)
	eng := sim.NewEngine()
	mk := func(board hv.Config) sched.Scheduler {
		p, err := newPolicy(cfg.Config, board)
		if err != nil {
			panic(err) // validated below before first use
		}
		return p
	}
	// Validate the algorithm once, eagerly.
	if _, err := newPolicy(cfg.Config, hcfg); err != nil {
		return nil, err
	}
	cl, err := cluster.New(eng, cluster.Config{
		Boards:    cfg.Boards,
		HV:        hcfg,
		Dispatch:  d,
		Seed:      cfg.Seed,
		Admission: cfg.Admission.internal(),
	}, mk)
	if err != nil {
		return nil, err
	}
	return &Cluster{eng: eng, cl: cl}, nil
}

// Boards reports the cluster size.
func (c *Cluster) Boards() int { return c.cl.Boards() }

// Submit schedules an application arrival; the dispatcher places it on a
// board when it arrives.
func (c *Cluster) Submit(app *Application, batch, priority int, arrival time.Duration) error {
	return c.SubmitWith(app, batch, priority, arrival, SubmitOptions{})
}

// SubmitWith is Submit with admission attributes (tenant, SLO).
func (c *Cluster) SubmitWith(app *Application, batch, priority int, arrival time.Duration, opts SubmitOptions) error {
	if app == nil {
		return fmt.Errorf("nimblock: nil application")
	}
	return c.cl.SubmitWith(app.graph, batch, priority, sim.Time(sim.FromStd(arrival)), cluster.SubmitOptions{
		Tenant: opts.Tenant,
		SLO:    opts.sloSim(),
	})
}

// AdmissionStats reports admission counters (zero when admission is
// disabled).
func (c *Cluster) AdmissionStats() AdmissionStats {
	return admissionStats(c.cl.AdmissionStats())
}

// Run executes the simulation until every application retires.
func (c *Cluster) Run() ([]ClusterResult, error) {
	raw, err := c.cl.Run()
	if err != nil {
		return nil, err
	}
	out := make([]ClusterResult, len(raw))
	for i, r := range raw {
		out[i] = ClusterResult{
			Result: Result{
				App:              r.App,
				ID:               r.AppID,
				Batch:            r.Batch,
				Priority:         r.Priority,
				Arrival:          time.Duration(r.Arrival) * time.Microsecond,
				FirstLaunch:      time.Duration(r.FirstLaunch) * time.Microsecond,
				Retire:           time.Duration(r.Retire) * time.Microsecond,
				Response:         r.Response.Std(),
				Run:              r.Run.Std(),
				Reconfig:         r.Reconfig.Std(),
				Wait:             r.Wait.Std(),
				Preemptions:      r.Preemptions,
				Reconfigurations: r.Reconfigurations,
			},
			Board:        r.Board,
			Rejected:     r.Rejected,
			RejectReason: r.RejectReason,
		}
	}
	return out, nil
}
