package nimblock

import (
	"fmt"
	"time"

	"nimblock/internal/cluster"
	"nimblock/internal/faults"
	"nimblock/internal/fpga"
	"nimblock/internal/health"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
)

// DispatchPolicy selects how a cluster places arriving applications.
type DispatchPolicy string

// Available dispatch policies.
const (
	// DispatchRoundRobin cycles through boards.
	DispatchRoundRobin DispatchPolicy = "round-robin"
	// DispatchLeastLoaded picks the board with the least estimated
	// outstanding work.
	DispatchLeastLoaded DispatchPolicy = "least-loaded"
	// DispatchLeastPending picks the board with the fewest pending apps.
	DispatchLeastPending DispatchPolicy = "least-pending"
	// DispatchRandom picks a seeded-random board.
	DispatchRandom DispatchPolicy = "random"
	// DispatchHeteroAware scores boards by estimated outstanding work
	// scaled by each board's latency scale and divided by its usable
	// slot count — the placement policy for heterogeneous fleets (see
	// ClusterConfig.BoardSpecs). On identical boards it degenerates to
	// least-loaded ordering.
	DispatchHeteroAware DispatchPolicy = "hetero-aware"
)

// ClusterConfig parameterizes a multi-FPGA deployment: Boards identical
// FPGAs, each scheduled independently by Config.Algorithm, fronted by an
// arrival-time dispatcher.
type ClusterConfig struct {
	// Config applies to every board.
	Config
	// Boards is the number of FPGAs (default 2).
	Boards int
	// BoardSpecs, when non-empty, gives each board its own capability
	// spec (slots, bandwidth, latency scale, power model), making the
	// fleet heterogeneous; its length must equal Boards. Boards without
	// a spec field set inherit the embedded Config's platform. Pair
	// with DispatchHeteroAware so placement sees the differences.
	BoardSpecs []*BoardSpec
	// Dispatch places arrivals (default DispatchLeastLoaded).
	Dispatch DispatchPolicy
	// Seed drives DispatchRandom.
	Seed int64
	// Admission, when non-nil, bounds what the cluster accepts; rejected
	// submissions come back from Run as Rejected results, not errors.
	Admission *AdmissionConfig
	// Health, when non-nil, arms board-level failure domains: liveness
	// tracking, circuit-breaker re-admission, failover of work off dead
	// boards (checkpoint migration when checkpointing is enabled), and
	// optional hedged dispatch. It is armed automatically when the
	// embedded Config.FaultPlan schedules board-crash, board-hang, or
	// board-degrade events.
	Health *HealthConfig
}

// HealthConfig tunes the cluster's board-level failure domain layer.
// The zero value of every field selects a sensible default.
type HealthConfig struct {
	// LivenessInterval is how often each board's event-progress
	// heartbeat is polled (default 500 ms); LivenessMisses is how many
	// consecutive static polls with work outstanding declare the board
	// dead (default 3).
	LivenessInterval time.Duration
	LivenessMisses   int
	// BackoffBase and BackoffMax bound the circuit breaker's
	// re-admission backoff after a board death (defaults 2 s and 60 s);
	// each repeated death doubles the wait, jittered +/-20%.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RetryBudget is how many times one submission may be re-dispatched
	// after losing its board before it surfaces as a Failed result
	// (default 2).
	RetryBudget int
	// HedgePriority, when > 0, duplicates submissions with priority >=
	// it onto the two best healthy boards, cancelling the slower copy
	// when the faster retires.
	HedgePriority int
}

// internal maps the public knobs onto the health package options.
func (h *HealthConfig) internal() *health.Options {
	if h == nil {
		return nil
	}
	return &health.Options{
		Tracker: health.Config{
			LivenessInterval: sim.FromStd(h.LivenessInterval),
			LivenessMisses:   h.LivenessMisses,
			BackoffBase:      sim.FromStd(h.BackoffBase),
			BackoffMax:       sim.FromStd(h.BackoffMax),
		},
		RetryBudget:   h.RetryBudget,
		HedgePriority: h.HedgePriority,
	}
}

// DefaultClusterConfig is a two-board, least-loaded Nimblock cluster.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Config:   DefaultConfig(),
		Boards:   2,
		Dispatch: DispatchLeastLoaded,
	}
}

// ClusterResult is a Result annotated with the board that served it.
// When Rejected is set the submission was turned away at admission:
// Board is -1, RejectReason names the outcome ("shed", "deadline",
// "quota"), and only the identifying fields are meaningful. When Failed
// is set the submission was accepted but lost permanently to board
// deaths: FailReason is "retries-exhausted" or "stranded" and Board is
// the last board that held it (or -1).
type ClusterResult struct {
	Result
	Board        int
	Rejected     bool
	RejectReason string
	Failed       bool
	FailReason   string
	// Attempts counts placements: 1 for a submission that completed
	// where it first landed, more after failover.
	Attempts int
}

// Cluster is a multi-FPGA system: Submit applications, then Run.
type Cluster struct {
	eng     *sim.Engine
	cl      *cluster.Cluster
	horizon sim.Time
	// energy is sampled at engine quiescence during Run (see
	// System.energy for why).
	energy *hv.EnergyStats
}

// NewCluster builds a multi-FPGA deployment.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Boards == 0 {
		cfg.Boards = 2
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = AlgoNimblock
	}
	var d cluster.Dispatch
	switch cfg.Dispatch {
	case DispatchRoundRobin:
		d = cluster.RoundRobin
	case DispatchLeastLoaded, "":
		d = cluster.LeastLoaded
	case DispatchLeastPending:
		d = cluster.LeastPending
	case DispatchRandom:
		d = cluster.RandomBoard
	case DispatchHeteroAware:
		d = cluster.HeteroAware
	default:
		return nil, fmt.Errorf("nimblock: unknown dispatch policy %q", cfg.Dispatch)
	}
	hcfg := hv.DefaultConfig()
	if cfg.Slots > 0 {
		hcfg.Board.Slots = cfg.Slots
	}
	if cfg.Config.Board != nil {
		sp := fpga.Spec(*cfg.Config.Board)
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		hcfg.Board = sp.Apply(hcfg.Board)
	}
	var boardConfigs []hv.Config
	if len(cfg.BoardSpecs) > 0 {
		if len(cfg.BoardSpecs) != cfg.Boards {
			return nil, fmt.Errorf("nimblock: %d board specs for %d boards", len(cfg.BoardSpecs), cfg.Boards)
		}
		boardConfigs = make([]hv.Config, cfg.Boards)
		for i, bs := range cfg.BoardSpecs {
			c := hcfg
			if bs != nil {
				sp := fpga.Spec(*bs)
				if err := sp.Validate(); err != nil {
					return nil, fmt.Errorf("nimblock: board %d: %w", i, err)
				}
				c.Board = sp.Apply(c.Board)
			}
			boardConfigs[i] = c
		}
	}
	if cfg.SchedInterval > 0 {
		hcfg.SchedInterval = sim.FromStd(cfg.SchedInterval)
	}
	if cfg.Horizon > 0 {
		hcfg.Horizon = sim.Time(sim.FromStd(cfg.Horizon))
	}
	// One observer watches every board; events carry board-local app IDs,
	// so observers aggregating per-app state should key on (App, AppID).
	hcfg.Observer = wrapObserver(cfg.Observer)
	var boardFaults []faults.BoardEvent
	if cfg.FaultPlan != "" {
		plan, err := faults.ParsePlan(cfg.FaultPlan)
		if err != nil {
			return nil, err
		}
		// Board-scoped events drive the fleet health monitor; everything
		// else stays with the per-board injector.
		boardFaults = plan.BoardEvents()
		factory, err := plan.Factory()
		if err != nil {
			return nil, err
		}
		hcfg.Board.NewInjector = factory
		hcfg.Board.MaxRetries = 10
	}
	eng := sim.NewEngine()
	mk := func(board hv.Config) sched.Scheduler {
		p, err := newPolicy(cfg.Config, board)
		if err != nil {
			panic(err) // validated below before first use
		}
		return p
	}
	// Validate the algorithm once, eagerly.
	if _, err := newPolicy(cfg.Config, hcfg); err != nil {
		return nil, err
	}
	cl, err := cluster.New(eng, cluster.Config{
		Boards:       cfg.Boards,
		HV:           hcfg,
		BoardConfigs: boardConfigs,
		Dispatch:     d,
		Seed:        cfg.Seed,
		Admission:   cfg.Admission.internal(),
		Health:      cfg.Health.internal(),
		BoardFaults: boardFaults,
	}, mk)
	if err != nil {
		return nil, err
	}
	return &Cluster{eng: eng, cl: cl, horizon: hcfg.Horizon}, nil
}

// Boards reports the cluster size.
func (c *Cluster) Boards() int { return c.cl.Boards() }

// Submit schedules an application arrival; the dispatcher places it on a
// board when it arrives.
func (c *Cluster) Submit(app *Application, batch, priority int, arrival time.Duration) error {
	return c.SubmitWith(app, batch, priority, arrival, SubmitOptions{})
}

// SubmitWith is Submit with admission attributes (tenant, SLO).
func (c *Cluster) SubmitWith(app *Application, batch, priority int, arrival time.Duration, opts SubmitOptions) error {
	if app == nil {
		return fmt.Errorf("nimblock: nil application")
	}
	return c.cl.SubmitWith(app.graph, batch, priority, sim.Time(sim.FromStd(arrival)), cluster.SubmitOptions{
		Tenant: opts.Tenant,
		SLO:    opts.sloSim(),
		Weight: opts.Weight,
	})
}

// AdmissionStats reports admission counters (zero when admission is
// disabled).
func (c *Cluster) AdmissionStats() AdmissionStats {
	return admissionStats(c.cl.AdmissionStats())
}

// Run executes the simulation until every application retires.
func (c *Cluster) Run() ([]ClusterResult, error) {
	raw, err := c.cl.Run()
	if err != nil {
		return nil, err
	}
	// The cluster's Run drains to quiescence (bounded by the horizon)
	// and leaves the clock at the makespan, so energy sampled here never
	// prices the idle tail out to the horizon.
	es := c.cl.Energy()
	c.energy = &es
	out := make([]ClusterResult, len(raw))
	for i, r := range raw {
		out[i] = ClusterResult{
			Result: Result{
				App:              r.App,
				ID:               r.AppID,
				Batch:            r.Batch,
				Priority:         r.Priority,
				Arrival:          time.Duration(r.Arrival) * time.Microsecond,
				FirstLaunch:      time.Duration(r.FirstLaunch) * time.Microsecond,
				Retire:           time.Duration(r.Retire) * time.Microsecond,
				Response:         r.Response.Std(),
				Run:              r.Run.Std(),
				Reconfig:         r.Reconfig.Std(),
				Wait:             r.Wait.Std(),
				Preemptions:      r.Preemptions,
				Reconfigurations: r.Reconfigurations,
			},
			Board:        r.Board,
			Rejected:     r.Rejected,
			RejectReason: r.RejectReason,
			Failed:       r.Failed,
			FailReason:   r.FailReason,
			Attempts:     r.Attempts,
		}
	}
	return out, nil
}

// Energy sums integrated energy across the fleet, sampled at the
// makespan once Run completes; zero unless the board specs carry a
// power model.
func (c *Cluster) Energy() EnergyStats {
	es := c.cl.Energy()
	if c.energy != nil {
		es = *c.energy
	}
	return EnergyStats{
		StaticJoules:        es.StaticJoules,
		ActiveJoules:        es.ActiveJoules,
		OccupiedSlotSeconds: es.OccupiedSlotSeconds,
		UsableSlotSeconds:   es.UsableSlotSeconds,
	}
}

// TenantServices reports the weighted service delivered to each tenant
// named in SubmitWith options, merged across boards.
func (c *Cluster) TenantServices() map[string]time.Duration {
	raw := c.cl.TenantServices()
	out := make(map[string]time.Duration, len(raw))
	for tenant, d := range raw {
		out[tenant] = d.Std()
	}
	return out
}

// BoardHealth reports every board's health state by name ("healthy",
// "degraded", "draining", "dead", "recovering"); nil when the failure
// domain layer is off.
func (c *Cluster) BoardHealth() []string {
	states := c.cl.BoardStates()
	if states == nil {
		return nil
	}
	out := make([]string, len(states))
	for i, s := range states {
		out[i] = s.String()
	}
	return out
}

// FailoverStats is the cluster's board-failure accounting.
type FailoverStats struct {
	// Deaths, Freezes, Degrades, and Recoveries count board-level
	// events; Redispatched, MigratedItems, and FailedSubmissions count
	// what happened to the work on dead boards; Hedged and
	// HedgeCancelled count duplicated SLO-critical placements.
	Deaths, Freezes, Degrades, Recoveries int
	Redispatched, MigratedItems           int
	FailedSubmissions                     int
	Hedged, HedgeCancelled                int
	// WastedWork is fabric time lost to board deaths net of migrated
	// progress; MigratedWork is the progress checkpoint migration
	// preserved.
	WastedWork, MigratedWork time.Duration
}

// FailoverStats reports the board-failure accounting (zero when the
// failure domain layer is off).
func (c *Cluster) FailoverStats() FailoverStats {
	st := c.cl.FailoverStats()
	return FailoverStats{
		Deaths:            st.Deaths,
		Freezes:           st.Freezes,
		Degrades:          st.Degrades,
		Recoveries:        st.Recoveries,
		Redispatched:      st.Redispatched,
		MigratedItems:     st.MigratedItems,
		FailedSubmissions: st.FailedSubmissions,
		Hedged:            st.Hedged,
		HedgeCancelled:    st.HedgeCancelled,
		WastedWork:        st.WastedWork.Std(),
		MigratedWork:      st.MigratedWork.Std(),
	}
}
