package nimblock

import (
	"testing"
	"time"
)

func TestServerlessQuickstart(t *testing.T) {
	platform, err := NewPlatform(DefaultServerlessConfig())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := Benchmark(LeNet)
	if err := platform.Register("classify", app, PriorityHigh); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := platform.Invoke("classify", 2, time.Duration(i)*200*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	res, err := platform.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("%d results", len(res))
	}
	cold := 0
	for _, r := range res {
		if r.Latency <= 0 || r.Function != "classify" {
			t.Fatalf("bad result %+v", r)
		}
		if r.Cold {
			cold++
		}
	}
	if cold == 0 {
		t.Fatal("no cold start recorded")
	}
	st := platform.Stats()
	if st.Invocations != 5 || st.ColdStarts != cold {
		t.Fatalf("stats %+v vs %d cold results", st, cold)
	}
}

func TestServerlessValidation(t *testing.T) {
	cfg := DefaultServerlessConfig()
	cfg.Algorithm = "bogus"
	if _, err := NewPlatform(cfg); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	platform, _ := NewPlatform(DefaultServerlessConfig())
	if err := platform.Register("x", nil, 1); err == nil {
		t.Fatal("nil app accepted")
	}
	if err := platform.Invoke("ghost", 1, 0); err == nil {
		t.Fatal("unknown function accepted")
	}
}
