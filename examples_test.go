package nimblock_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end so the
// documented entry points cannot rot. Skipped under -short (each example
// is a separate `go run` build).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example execution skipped in -short mode")
	}
	examples, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) < 7 {
		t.Fatalf("found only %d examples: %v", len(examples), examples)
	}
	for _, dir := range examples {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./"+dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", dir, err, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Fatalf("%s produced no output", dir)
			}
		})
	}
}
