package nimblock

import (
	"strings"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Algorithm() != "Nimblock" {
		t.Fatalf("algorithm = %q", sys.Algorithm())
	}
	app, err := Benchmark(LeNet)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Submit(app, 5, PriorityHigh, 0); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].App != LeNet || res[0].Response <= 0 {
		t.Fatalf("results = %+v", res)
	}
	if res[0].Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestAllAlgorithmsRunnable(t *testing.T) {
	for _, algo := range Algorithms() {
		cfg := DefaultConfig()
		cfg.Algorithm = algo
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		app, _ := Benchmark(ImageCompression)
		if err := sys.Submit(app, 3, PriorityMedium, 0); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestCustomApp(t *testing.T) {
	b := NewApp("custom")
	pre := b.AddTask("pre", 10*time.Millisecond)
	l := b.AddTask("left", 20*time.Millisecond)
	r := b.AddTask("right", 20*time.Millisecond)
	post := b.AddTask("post", 10*time.Millisecond)
	b.AddDependency(pre, l).AddDependency(pre, r)
	b.Chain(l, post)
	b.AddDependency(r, post)
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if app.NumTasks() != 4 || app.NumEdges() != 4 {
		t.Fatalf("shape: %d tasks %d edges", app.NumTasks(), app.NumEdges())
	}
	if app.CriticalPath() != 40*time.Millisecond {
		t.Fatalf("critical path = %v", app.CriticalPath())
	}
	sys, _ := NewSystem(DefaultConfig())
	if err := sys.Submit(app, 4, PriorityLow, 0); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].App != "custom" {
		t.Fatalf("result = %+v", res[0])
	}
}

func TestInvalidCustomApp(t *testing.T) {
	b := NewApp("cyclic")
	x := b.AddTask("x", time.Millisecond)
	y := b.AddTask("y", time.Millisecond)
	b.AddDependency(x, y).AddDependency(y, x)
	if _, err := b.Build(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestBenchmarksCatalog(t *testing.T) {
	names := Benchmarks()
	if len(names) != 6 {
		t.Fatalf("benchmarks = %v", names)
	}
	if _, err := Benchmark("ghost"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestTraceAndGantt(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTrace = true
	sys, _ := NewSystem(cfg)
	app, _ := Benchmark(Rendering3D)
	sys.Submit(app, 5, PriorityMedium, 0)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	dump := sys.TraceDump()
	for _, want := range []string{"arrival", "reconfig-done", "item-done", "retire"} {
		if !strings.Contains(dump, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	g := sys.Gantt(60)
	if !strings.Contains(g, "slot  0") || !strings.Contains(g, "#") {
		t.Fatalf("gantt:\n%s", g)
	}
}

func TestPreemptionsExposed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTrace = true
	sys, _ := NewSystem(cfg)
	of, _ := Benchmark(OpticalFlow)
	ln, _ := Benchmark(LeNet)
	dr, _ := Benchmark(Rendering3D)
	sys.Submit(of, 20, PriorityLow, 0)
	sys.Submit(ln, 5, PriorityHigh, 2*time.Second)
	sys.Submit(dr, 5, PriorityHigh, 2*time.Second+time.Millisecond)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range res {
		total += r.Preemptions
	}
	if sys.Preemptions() != total {
		t.Fatalf("Preemptions() = %d, results say %d", sys.Preemptions(), total)
	}
}

func TestFaultRateConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReconfigFaultRate = 0.2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := Benchmark(LeNet)
	sys.Submit(app, 2, PriorityMedium, 0)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = "bogus"
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	sys, _ := NewSystem(DefaultConfig())
	if err := sys.Submit(nil, 1, 1, 0); err == nil {
		t.Fatal("nil app accepted")
	}
}

func TestSingleSlotLatency(t *testing.T) {
	sys, _ := NewSystem(DefaultConfig())
	app, _ := Benchmark(LeNet)
	d := sys.SingleSlotLatency(app, 5)
	if d < 800*time.Millisecond || d > 950*time.Millisecond {
		t.Fatalf("single-slot latency = %v", d)
	}
}

func TestHorizonEnforced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = time.Second // far too short for DigitRecognition
	sys, _ := NewSystem(cfg)
	app, _ := Benchmark(DigitRecognition)
	sys.Submit(app, 5, PriorityMedium, 0)
	if _, err := sys.Run(); err == nil {
		t.Fatal("run beyond horizon did not fail")
	}
}

func TestOpPartitionFacade(t *testing.T) {
	b := NewOpApp("pipeline")
	a := b.AddOp("a", 5*time.Millisecond, ResourceDemand{LUTs: 0.3})
	c := b.AddOp("b", 5*time.Millisecond, ResourceDemand{LUTs: 0.3})
	d := b.AddOp("c", 5*time.Millisecond, ResourceDemand{LUTs: 0.3})
	e := b.AddOp("d", 5*time.Millisecond, ResourceDemand{LUTs: 0.9})
	b.Chain(a, c, d, e)
	app, info, err := b.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if info.Tasks < 2 || info.Tasks >= 4 {
		t.Fatalf("info = %+v", info)
	}
	if info.Utilization <= 0 || info.Utilization > 1 {
		t.Fatalf("utilization = %v", info.Utilization)
	}
	sys, _ := NewSystem(DefaultConfig())
	if err := sys.Submit(app, 3, PriorityMedium, 0); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].App != "pipeline" {
		t.Fatalf("result %+v", res[0])
	}
}

func TestOpPartitionRejectsOversized(t *testing.T) {
	b := NewOpApp("huge")
	b.AddOp("x", time.Millisecond, ResourceDemand{LUTs: 1.4})
	if _, _, err := b.Partition(); err == nil {
		t.Fatal("oversized op accepted")
	}
}

func TestInterconnectAndCheckpointOptions(t *testing.T) {
	for _, ic := range []string{"", "folded", "ps-bus", "noc"} {
		cfg := DefaultConfig()
		cfg.Interconnect = ic
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("%q: %v", ic, err)
		}
		app, _ := Benchmark(ImageCompression)
		sys.Submit(app, 4, PriorityMedium, 0)
		if _, err := sys.Run(); err != nil {
			t.Fatalf("%q: %v", ic, err)
		}
	}
	cfg := DefaultConfig()
	cfg.Interconnect = "bogus"
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("bogus interconnect accepted")
	}
	cfg = DefaultConfig()
	cfg.CheckpointPreemption = 5 * time.Millisecond
	cfg.EnableTrace = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	of, _ := Benchmark(OpticalFlow)
	ln, _ := Benchmark(LeNet)
	sys.Submit(of, 20, PriorityLow, 0)
	sys.Submit(ln, 5, PriorityHigh, 2*time.Second)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sys.TraceDump(), "checkpoint") == false && sys.Preemptions() == 0 {
		t.Log("no preemption provoked; acceptable but unexpected")
	}
}

func TestTraceJSONFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTrace = true
	sys, _ := NewSystem(cfg)
	app, _ := Benchmark(LeNet)
	sys.Submit(app, 2, PriorityLow, 0)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	data, err := sys.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "reconfig-done") {
		t.Fatal("trace JSON missing events")
	}
}
