package nimblock

import (
	"fmt"
	"time"

	"nimblock/internal/faas"
	"nimblock/internal/fpga"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
)

// ServerlessConfig parameterizes a Platform: a function-as-a-service
// front-end over a multi-FPGA Nimblock cluster, with warm-board affinity
// and cold-start modelling (bitstream distribution to a board's storage
// before its first invocation there).
type ServerlessConfig struct {
	// Config applies to every board (algorithm, slots, interval...).
	Config
	// Boards is the cluster size (default 4).
	Boards int
	// BoardSpecs, when non-empty, gives each board its own capability
	// spec (slots, bandwidth, latency scale, power model), making the
	// fleet heterogeneous; its length must equal Boards. Placement
	// scores fold each board's latency scale and width in, so slow or
	// narrow boards attract proportionally less work.
	BoardSpecs []*BoardSpec
	// ColdStart is the bitstream-distribution delay paid the first time
	// a function lands on a board (default 500 ms).
	ColdStart time.Duration
	// ScaleUp is the per-board backlog beyond which the dispatcher pays
	// a cold start to open another board (default 4).
	ScaleUp int
	// Admission, when non-nil, bounds accepted invocations; rejections
	// come back from Run as Rejected results, not errors.
	Admission *AdmissionConfig
}

// DefaultServerlessConfig returns a 4-board platform.
func DefaultServerlessConfig() ServerlessConfig {
	return ServerlessConfig{
		Config:    DefaultConfig(),
		Boards:    4,
		ColdStart: 500 * time.Millisecond,
		ScaleUp:   4,
	}
}

// InvocationResult is one completed function invocation.
type InvocationResult struct {
	Function string
	Board    int
	// Cold reports whether this invocation paid a cold start.
	Cold bool
	// InvokedAt is the client-side invocation instant.
	InvokedAt time.Duration
	// Latency is completion minus invocation, including any cold start.
	Latency time.Duration
	// Items echoes the invocation's input count.
	Items int
	// Rejected marks an invocation turned away at admission: Board is
	// -1, Latency 0, and RejectReason names the outcome.
	Rejected     bool
	RejectReason string
}

// PlatformStats aggregates invocation counters. Invocations counts
// accepted dispatches; Rejections counts admission rejections.
type PlatformStats struct {
	Invocations int
	ColdStarts  int
	WarmStarts  int
	Rejections  int
}

// FunctionOptions carries a function's admission attributes.
type FunctionOptions struct {
	// Tenant attributes the function's invocations for quotas and fair
	// sharing.
	Tenant string
	// SLO is the per-invocation latency budget for deadline admission.
	SLO time.Duration
	// Weight is the tenant's service weight for fairness-aware
	// scheduling (AlgoNimblockEnergy); <= 0 means 1.
	Weight float64
}

// Platform is the serverless front-end: Register functions, Invoke them,
// then Run.
type Platform struct {
	eng     *sim.Engine
	p       *faas.Platform
	horizon sim.Time
	// energy is sampled at engine quiescence during Run (see
	// System.energy for why).
	energy *hv.EnergyStats
}

// NewPlatform builds a serverless platform.
func NewPlatform(cfg ServerlessConfig) (*Platform, error) {
	if cfg.Boards == 0 {
		cfg.Boards = 4
	}
	if cfg.ColdStart == 0 {
		cfg.ColdStart = 500 * time.Millisecond
	}
	if cfg.ScaleUp == 0 {
		cfg.ScaleUp = 4
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = AlgoNimblock
	}
	hcfg := hv.DefaultConfig()
	if cfg.Slots > 0 {
		hcfg.Board.Slots = cfg.Slots
	}
	if cfg.SchedInterval > 0 {
		hcfg.SchedInterval = sim.FromStd(cfg.SchedInterval)
	}
	if cfg.Horizon > 0 {
		hcfg.Horizon = sim.Time(sim.FromStd(cfg.Horizon))
	}
	hcfg.Observer = wrapObserver(cfg.Observer)
	if cfg.Config.Board != nil {
		sp := fpga.Spec(*cfg.Config.Board)
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		hcfg.Board = sp.Apply(hcfg.Board)
	}
	var boardConfigs []hv.Config
	if len(cfg.BoardSpecs) > 0 {
		if len(cfg.BoardSpecs) != cfg.Boards {
			return nil, fmt.Errorf("nimblock: %d board specs for %d boards", len(cfg.BoardSpecs), cfg.Boards)
		}
		boardConfigs = make([]hv.Config, cfg.Boards)
		for i, bs := range cfg.BoardSpecs {
			c := hcfg
			if bs != nil {
				sp := fpga.Spec(*bs)
				if err := sp.Validate(); err != nil {
					return nil, fmt.Errorf("nimblock: board %d: %w", i, err)
				}
				c.Board = sp.Apply(c.Board)
			}
			boardConfigs[i] = c
		}
	}
	if _, err := newPolicy(cfg.Config, hcfg); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	p, err := faas.New(eng, faas.Config{
		Boards:       cfg.Boards,
		HV:           hcfg,
		BoardConfigs: boardConfigs,
		ColdStart:    sim.FromStd(cfg.ColdStart),
		ScaleUp:      cfg.ScaleUp,
		Admission:    cfg.Admission.internal(),
	}, func() sched.Scheduler {
		pol, err := newPolicy(cfg.Config, hcfg)
		if err != nil {
			panic(err) // validated above
		}
		return pol
	})
	if err != nil {
		return nil, err
	}
	return &Platform{eng: eng, p: p, horizon: hcfg.Horizon}, nil
}

// Register adds a function backed by an application task-graph.
func (pl *Platform) Register(name string, app *Application, priority int) error {
	return pl.RegisterWith(name, app, priority, FunctionOptions{})
}

// RegisterWith is Register with admission attributes (tenant, SLO).
func (pl *Platform) RegisterWith(name string, app *Application, priority int, opts FunctionOptions) error {
	if app == nil {
		return fmt.Errorf("nimblock: nil application for function %q", name)
	}
	return pl.p.Register(name, faas.Function{
		Graph:    app.graph,
		Priority: priority,
		Tenant:   opts.Tenant,
		SLO:      sim.FromStd(opts.SLO),
		Weight:   opts.Weight,
	})
}

// AdmissionStats reports admission counters (zero when admission is
// disabled).
func (pl *Platform) AdmissionStats() AdmissionStats {
	return admissionStats(pl.p.AdmissionStats())
}

// Invoke schedules an invocation with the given number of independent
// inputs at the given time.
func (pl *Platform) Invoke(function string, items int, at time.Duration) error {
	return pl.p.Invoke(function, items, sim.Time(sim.FromStd(at)))
}

// Stats returns invocation counters.
func (pl *Platform) Stats() PlatformStats {
	s := pl.p.Stats()
	return PlatformStats{Invocations: s.Invocations, ColdStarts: s.ColdStarts, WarmStarts: s.WarmStarts, Rejections: s.Rejections}
}

// Energy sums integrated energy across the platform's boards, sampled
// at the makespan once Run completes; zero unless the board specs
// carry a power model.
func (pl *Platform) Energy() EnergyStats {
	es := pl.p.Energy()
	if pl.energy != nil {
		es = *pl.energy
	}
	return EnergyStats{
		StaticJoules:        es.StaticJoules,
		ActiveJoules:        es.ActiveJoules,
		OccupiedSlotSeconds: es.OccupiedSlotSeconds,
		UsableSlotSeconds:   es.UsableSlotSeconds,
	}
}

// TenantServices reports the weighted service delivered to each
// function tenant, merged across boards.
func (pl *Platform) TenantServices() map[string]time.Duration {
	raw := pl.p.TenantServices()
	out := make(map[string]time.Duration, len(raw))
	for tenant, d := range raw {
		out[tenant] = d.Std()
	}
	return out
}

// Run completes every invocation and returns results in invocation order.
func (pl *Platform) Run() ([]InvocationResult, error) {
	raw, err := pl.p.Run()
	if err != nil {
		return nil, err
	}
	// The platform's Run drains to quiescence (bounded by the horizon)
	// and leaves the clock at the makespan, so energy sampled here never
	// prices the idle tail out to the horizon.
	es := pl.p.Energy()
	pl.energy = &es
	out := make([]InvocationResult, len(raw))
	for i, r := range raw {
		out[i] = InvocationResult{
			Function:     r.Function,
			Board:        r.Board,
			Cold:         r.Cold,
			InvokedAt:    time.Duration(r.InvokedAt) * time.Microsecond,
			Latency:      r.Latency.Std(),
			Items:        r.Items,
			Rejected:     r.Rejected,
			RejectReason: r.RejectReason,
		}
	}
	return out, nil
}
