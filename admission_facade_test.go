package nimblock

import (
	"testing"
	"time"
)

func TestClusterAdmissionFacade(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Boards = 1
	cfg.Admission = &AdmissionConfig{Capacity: 2}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := Benchmark("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := cl.Submit(app, 2, 3, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	var done, shed int
	for _, r := range res {
		if r.Rejected {
			shed++
			if r.Board != -1 || r.RejectReason != "shed" {
				t.Fatalf("bad rejection %+v", r)
			}
		} else {
			done++
			if r.Response <= 0 {
				t.Fatalf("bad completion %+v", r)
			}
		}
	}
	if done != 2 || shed != 3 {
		t.Fatalf("done %d shed %d", done, shed)
	}
	s := cl.AdmissionStats()
	if s.Offered != 5 || s.Admitted != 2 || s.Shed != 3 {
		t.Fatalf("stats %+v", s)
	}
}

func TestClusterSubmitWithSLO(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Boards = 1
	cfg.Admission = &AdmissionConfig{}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := Benchmark("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SubmitWith(app, 2, 3, 0, SubmitOptions{SLO: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := cl.SubmitWith(app, 2, 3, 0, SubmitOptions{SLO: time.Hour}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Rejected || res[0].RejectReason != "deadline" {
		t.Fatalf("impossible SLO admitted: %+v", res[0])
	}
	if res[1].Rejected {
		t.Fatalf("feasible SLO rejected: %+v", res[1])
	}
}

func TestPlatformAdmissionFacade(t *testing.T) {
	cfg := DefaultServerlessConfig()
	cfg.Boards = 1
	cfg.Admission = &AdmissionConfig{Quotas: map[string]int{"capped": 1}}
	pl, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := Benchmark("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.RegisterWith("f", app, 3, FunctionOptions{Tenant: "capped"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := pl.Invoke("f", 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	var done, quota int
	for _, r := range res {
		if r.Rejected {
			if r.RejectReason != "quota" || r.Board != -1 || r.Latency != 0 {
				t.Fatalf("bad rejection %+v", r)
			}
			quota++
		} else {
			done++
		}
	}
	if done != 1 || quota != 2 {
		t.Fatalf("done %d quota %d", done, quota)
	}
	if st := pl.Stats(); st.Rejections != 2 || st.Invocations != 1 {
		t.Fatalf("stats %+v", st)
	}
	if s := pl.AdmissionStats(); s.RejectedQuota != 2 || s.Completed != 1 {
		t.Fatalf("admission stats %+v", s)
	}
}

func TestAdmissionDisabledFacade(t *testing.T) {
	cl, err := NewCluster(DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s := cl.AdmissionStats(); s != (AdmissionStats{}) {
		t.Fatalf("stats without admission: %+v", s)
	}
}
