package nimblock

import (
	"time"

	"nimblock/internal/obs"
	"nimblock/internal/trace"
)

// TraceEvent is the public form of one hypervisor trace event, delivered
// to an Observer live as the simulation emits it. At is virtual time
// since system start. Task, Slot, and Item are -1 when the event does
// not concern one (an arrival names no slot). Kind uses the trace
// interchange vocabulary: "arrival", "reconfig-start", "reconfig-done",
// "item-start", "item-done", "task-done", "preempt-request", "preempt",
// "retire", plus the fault-injection kinds ("fault", "retry",
// "watchdog", "checkpoint", "quarantine", "slot-offline").
type TraceEvent struct {
	At    time.Duration
	Kind  string
	App   string
	AppID int64
	Task  int
	Slot  int
	Item  int
}

// Observer receives every trace event live, independent of
// Config.EnableTrace (which retains the full log in memory instead).
// Observe is called from the simulation loop: it must not block, and it
// must be safe for concurrent use when one observer is shared by several
// systems. A nil observer costs one pointer test per event.
type Observer interface {
	Observe(e TraceEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(e TraceEvent)

// Observe implements Observer.
func (f ObserverFunc) Observe(e TraceEvent) { f(e) }

// obsAdapter bridges the internal sink interface to the public Observer.
type obsAdapter struct {
	o Observer
}

func (a obsAdapter) Observe(e trace.Event) {
	a.o.Observe(TraceEvent{
		At:    time.Duration(e.At) * time.Microsecond,
		Kind:  e.Kind.String(),
		App:   e.App,
		AppID: e.AppID,
		Task:  e.Task,
		Slot:  e.Slot,
		Item:  e.Item,
	})
}

// wrapObserver converts a public Observer into an internal sink; nil
// stays nil so the zero-cost disabled path is preserved.
func wrapObserver(o Observer) obs.Sink {
	if o == nil {
		return nil
	}
	return obsAdapter{o: o}
}
