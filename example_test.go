package nimblock_test

import (
	"fmt"
	"time"

	"nimblock"
)

// ExampleNewSystem runs one benchmark application on the default
// Nimblock-scheduled overlay.
func ExampleNewSystem() {
	sys, _ := nimblock.NewSystem(nimblock.DefaultConfig())
	app, _ := nimblock.Benchmark(nimblock.ImageCompression)
	sys.Submit(app, 4, nimblock.PriorityMedium, 0)
	results, _ := sys.Run()
	fmt.Printf("%s finished its batch of %d\n", results[0].App, results[0].Batch)
	// Output: ImageCompression finished its batch of 4
}

// ExampleNewApp builds and runs a custom three-stage pipeline.
func ExampleNewApp() {
	b := nimblock.NewApp("sensor-pipeline")
	in := b.AddTask("ingest", 5*time.Millisecond)
	ft := b.AddTask("filter", 8*time.Millisecond)
	cl := b.AddTask("classify", 4*time.Millisecond)
	b.Chain(in, ft, cl)
	app, _ := b.Build()
	fmt.Printf("%d tasks, critical path %v\n", app.NumTasks(), app.CriticalPath())
	// Output: 3 tasks, critical path 17ms
}

// ExampleNewCluster spreads work across two boards.
func ExampleNewCluster() {
	cl, _ := nimblock.NewCluster(nimblock.DefaultClusterConfig())
	app, _ := nimblock.Benchmark(nimblock.LeNet)
	cl.Submit(app, 2, nimblock.PriorityHigh, 0)
	cl.Submit(app, 2, nimblock.PriorityHigh, time.Millisecond)
	results, _ := cl.Run()
	boards := map[int]bool{}
	for _, r := range results {
		boards[r.Board] = true
	}
	fmt.Printf("%d results on %d boards\n", len(results), len(boards))
	// Output: 2 results on 2 boards
}

// ExampleNewOpApp partitions a fine-grained operation graph into
// slot-sized tasks automatically.
func ExampleNewOpApp() {
	b := nimblock.NewOpApp("kernel")
	x := b.AddOp("stage1", 10*time.Millisecond, nimblock.ResourceDemand{LUTs: 0.4})
	y := b.AddOp("stage2", 10*time.Millisecond, nimblock.ResourceDemand{LUTs: 0.4})
	z := b.AddOp("stage3", 10*time.Millisecond, nimblock.ResourceDemand{LUTs: 0.4})
	b.Chain(x, y, z)
	app, info, _ := b.Partition()
	fmt.Printf("%s: %d ops packed into %d tasks\n", app.Name(), 3, info.Tasks)
	// Output: kernel: 3 ops packed into 2 tasks
}
