package nimblock

import (
	"testing"
	"time"
)

func TestClusterQuickstart(t *testing.T) {
	cl, err := NewCluster(DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cl.Boards() != 2 {
		t.Fatalf("boards = %d", cl.Boards())
	}
	for i := 0; i < 6; i++ {
		app, _ := Benchmark(Rendering3D)
		if err := cl.Submit(app, 3, PriorityMedium, time.Duration(i)*100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("%d results", len(res))
	}
	boards := map[int]bool{}
	for _, r := range res {
		boards[r.Board] = true
		if r.Response <= 0 {
			t.Fatalf("bad result %+v", r)
		}
	}
	if len(boards) != 2 {
		t.Fatalf("apps landed on %d boards, want 2", len(boards))
	}
}

func TestClusterDispatchPolicies(t *testing.T) {
	for _, d := range []DispatchPolicy{DispatchRoundRobin, DispatchLeastLoaded, DispatchLeastPending, DispatchRandom} {
		cfg := DefaultClusterConfig()
		cfg.Dispatch = d
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		app, _ := Benchmark(LeNet)
		cl.Submit(app, 2, PriorityLow, 0)
		if _, err := cl.Run(); err != nil {
			t.Fatalf("%s: %v", d, err)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Dispatch = "bogus"
	if _, err := NewCluster(cfg); err == nil {
		t.Fatal("bogus dispatch accepted")
	}
	cfg = DefaultClusterConfig()
	cfg.Algorithm = "bogus"
	if _, err := NewCluster(cfg); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	cl, _ := NewCluster(DefaultClusterConfig())
	if err := cl.Submit(nil, 1, 1, 0); err == nil {
		t.Fatal("nil app accepted")
	}
}

func TestClusterScalesThroughput(t *testing.T) {
	run := func(boards int) time.Duration {
		cfg := DefaultClusterConfig()
		cfg.Boards = boards
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			app, _ := Benchmark(OpticalFlow)
			cl.Submit(app, 5, PriorityMedium, time.Duration(i)*50*time.Millisecond)
		}
		res, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		var total time.Duration
		for _, r := range res {
			total += r.Response
		}
		return total
	}
	if one, four := run(1), run(4); four >= one {
		t.Fatalf("scale-out did not help: 1 board %v vs 4 boards %v", one, four)
	}
}
