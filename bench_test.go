// Benchmarks regenerating every table and figure from the paper's
// evaluation. Each BenchmarkTableN / BenchmarkFigN runs the corresponding
// experiment end to end; the simulated time is fixed per iteration, so
// ns/op measures the harness cost of regenerating that artifact.
//
// Benchmarks run at reduced stimulus scale (experiments.QuickConfig) so
// `go test -bench=.` completes in seconds; `cmd/nimblock-paper` runs the
// paper-scale version of the same drivers. Set NIMBLOCK_BENCH_FULL=1 to
// benchmark at paper scale.
package nimblock_test

import (
	"os"
	"testing"

	"nimblock/internal/experiments"
	"nimblock/internal/workload"
)

func benchConfig() experiments.Config {
	if os.Getenv("NIMBLOCK_BENCH_FULL") != "" {
		return experiments.DefaultConfig()
	}
	return experiments.QuickConfig()
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// scenarioData runs the three congestion scenarios once per iteration,
// the shared stimulus for Figures 5-8.
func scenarioData(b *testing.B, cfg experiments.Config) map[workload.Scenario]*experiments.ScenarioData {
	b.Helper()
	data := map[workload.Scenario]*experiments.ScenarioData{}
	for _, sc := range workload.Scenarios() {
		d, err := experiments.RunScenario(cfg, sc, experiments.PolicyNames)
		if err != nil {
			b.Fatal(err)
		}
		data[sc] = d
	}
	return data
}

func BenchmarkFig5(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data := scenarioData(b, cfg)
		if _, err := experiments.Fig5(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data := scenarioData(b, cfg)
		if _, err := experiments.Fig6(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data := scenarioData(b, cfg)
		if _, err := experiments.Fig7(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := experiments.RunScenario(cfg, workload.Standard, []string{"Nimblock"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig8(d); err != nil {
			b.Fatal(err)
		}
	}
}

// ablationData runs the fixed-batch stress stimulus for Figures 9-11.
func ablationData(b *testing.B, cfg experiments.Config) *experiments.AblationData {
	b.Helper()
	data, err := experiments.RunAblation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

func BenchmarkFig9(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(ablationData(b, cfg)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(ablationData(b, cfg)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(ablationData(b, cfg)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Ablation regenerates the deadline-ablation extension
// experiment (preemption's impact on deadline protection).
func BenchmarkFig7Ablation(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DeadlineAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterconnectStudy regenerates the NoC-vs-PS extension study.
func BenchmarkInterconnectStudy(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.InterconnectStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleOut regenerates the multi-FPGA scale-out study.
func BenchmarkScaleOut(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ScaleOut(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlotSweep regenerates the overlay-size sensitivity study.
func BenchmarkSlotSweep(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SlotSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUtilizationStudy regenerates the slot-occupancy study.
func BenchmarkUtilizationStudy(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.UtilizationStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimality regenerates the online-vs-offline gap study.
func BenchmarkOptimality(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Optimality(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreemptStudy regenerates the preemption-mechanism study.
func BenchmarkPreemptStudy(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PreemptStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconfigSweep regenerates the PR-latency sensitivity study.
func BenchmarkReconfigSweep(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ReconfigSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduler measures raw simulation throughput of one stress
// sequence per policy — the cost of the scheduling algorithms themselves.
func BenchmarkScheduler(b *testing.B) {
	cfg := benchConfig()
	seq := workload.Generate(workload.Spec{Scenario: workload.Stress, Events: cfg.Events}, cfg.Seed)
	for _, pol := range experiments.PolicyNames {
		pol := pol
		b.Run(pol, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunSequence(cfg, pol, seq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
