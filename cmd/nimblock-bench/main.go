// Command nimblock-bench is the benchmark-regression harness: it runs the
// key experiment drivers N times under controlled timing, both through the
// serial reference path (one worker) and the parallel runner, and emits
// BENCH_<rev>.json with ns/op, allocs/op, bytes/op, simulator events/sec,
// and the parallel speedup. Commit the file to record the performance
// trajectory of the repository; compare two files to spot a regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"nimblock/internal/experiments"
	"nimblock/internal/workload"
)

// Sample is one measured benchmark.
type Sample struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	Iters        int     `json:"iters"`
	Rounds       int     `json:"rounds"`
}

// Report is the BENCH_<rev>.json payload.
type Report struct {
	Rev        string             `json:"rev"`
	Generated  string             `json:"generated"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	CPUs       int                `json:"cpus"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Scale      string             `json:"scale"`
	Benchmarks []Sample           `json:"benchmarks"`
	Speedup    map[string]float64 `json:"speedup_vs_serial"`
}

func main() {
	var (
		rev       = flag.String("rev", "", "revision label for the output file (default: git short hash, else \"dev\")")
		outDir    = flag.String("out", ".", "directory for BENCH_<rev>.json")
		rounds    = flag.Int("rounds", 3, "measurement rounds per benchmark; the fastest round is reported")
		benchtime = flag.Duration("benchtime", time.Second, "minimum measuring time per round")
		full      = flag.Bool("full", false, "paper-scale stimulus instead of quick scale")
		baseline  = flag.String("baseline", "", "committed BENCH_<rev>.json to gate against: exit 1 if any shared benchmark regresses more than -tolerance in ns/op, allocs/op, or bytes/op")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional regression against -baseline")
	)
	flag.Parse()

	if *rev == "" {
		*rev = gitRev()
	}
	cfg := experiments.QuickConfig()
	scale := "quick"
	if *full {
		cfg = experiments.DefaultConfig()
		scale = "full"
	}
	serial := cfg
	serial.Workers = 1
	parallel := cfg
	parallel.Workers = 0 // NIMBLOCK_PARALLEL or GOMAXPROCS

	report := &Report{
		Rev:        *rev,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Speedup:    map[string]float64{},
	}

	type pair struct {
		name string
		fn   func(experiments.Config) error
	}
	// Each driver is measured twice: once serial, once parallel. These are
	// the hottest figure/sweep pipelines (BenchmarkFig5-7 share the
	// scenario stimulus measured by Scenarios).
	pairs := []pair{
		{"Scenarios", runScenarios},
		{"Fig5", runFig5},
		{"Ablation", runAblation},
		{"ScaleOut", runScaleOut},
		{"Fleet", runFleet},
	}
	byName := map[string]Sample{}
	record := func(s Sample) {
		report.Benchmarks = append(report.Benchmarks, s)
		byName[s.Name] = s
		fmt.Fprintf(os.Stderr, "%-24s %14.0f ns/op %12.0f allocs/op %11.0f events/sec (%d iters x %d rounds)\n",
			s.Name, s.NsPerOp, s.AllocsPerOp, s.EventsPerSec, s.Iters, s.Rounds)
	}
	for _, p := range pairs {
		record(measure(p.name+"Serial", *rounds, *benchtime, func() {
			fail(p.fn(serial))
		}))
		record(measure(p.name+"Parallel", *rounds, *benchtime, func() {
			fail(p.fn(parallel))
		}))
		report.Speedup[p.name] = byName[p.name+"Serial"].NsPerOp / byName[p.name+"Parallel"].NsPerOp
	}
	// Raw single-sequence scheduling cost per policy (serial by nature).
	seq := workload.Generate(workload.Spec{Scenario: workload.Stress, Events: cfg.Events}, cfg.Seed)
	for _, pol := range experiments.PolicyNames {
		pol := pol
		record(measure("Scheduler/"+pol, *rounds, *benchtime, func() {
			_, err := experiments.RunSequence(serial, pol, seq)
			fail(err)
		}))
	}

	path := filepath.Join(*outDir, fmt.Sprintf("BENCH_%s.json", *rev))
	buf, err := json.MarshalIndent(report, "", "  ")
	fail(err)
	buf = append(buf, '\n')
	fail(os.WriteFile(path, buf, 0o644))
	fmt.Println(path)

	if *baseline != "" {
		fail(gate(*baseline, byName, *tolerance))
	}
}

// gate compares the run against a committed baseline report: every
// benchmark present in both must stay within tolerance on ns/op,
// allocs/op, and bytes/op. Timing gates are noisy on shared CI runners,
// so the tolerance is generous (15%); allocs/op and bytes/op — which
// are deterministic — carry the same bound. Benchmarks only one side
// knows are skipped, so adding or retiring a benchmark does not break
// the gate.
func gate(path string, got map[string]Sample, tolerance float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var failures []string
	compared := 0
	for _, b := range base.Benchmarks {
		s, ok := got[b.Name]
		if !ok {
			continue
		}
		compared++
		check := func(metric string, base, now float64) {
			if base <= 0 {
				return
			}
			if grew := now/base - 1; grew > tolerance {
				failures = append(failures, fmt.Sprintf("%s: %s regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
					b.Name, metric, 100*grew, base, now, 100*tolerance))
			}
		}
		check("ns/op", b.NsPerOp, s.NsPerOp)
		check("allocs/op", b.AllocsPerOp, s.AllocsPerOp)
		check("bytes/op", b.BytesPerOp, s.BytesPerOp)
	}
	if compared == 0 {
		return fmt.Errorf("bench gate: no benchmark shared with %s", path)
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench gate vs %s:\n  %s", path, strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "bench gate: %d benchmarks within %.0f%% of %s\n", compared, 100*tolerance, path)
	return nil
}

// measure times fn until benchtime elapses (at least one iteration),
// repeats for the given number of rounds, and keeps the fastest round —
// the standard defense against scheduler noise. Simulator events fired
// during the fastest round (experiments.EventsFired deltas) become the
// sample's events/op and events/sec.
func measure(name string, rounds int, benchtime time.Duration, fn func()) Sample {
	fn() // warm caches (saturation analysis, graph memos) out of band
	best := Sample{Name: name, Rounds: rounds}
	for r := 0; r < rounds; r++ {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		ev0 := experiments.EventsFired()
		iters := 0
		start := time.Now()
		for time.Since(start) < benchtime || iters == 0 {
			fn()
			iters++
		}
		elapsed := time.Since(start)
		events := experiments.EventsFired() - ev0
		runtime.ReadMemStats(&ms1)
		nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
		if best.Iters == 0 || nsPerOp < best.NsPerOp {
			best.NsPerOp = nsPerOp
			best.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
			best.BytesPerOp = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters)
			best.EventsPerOp = float64(events) / float64(iters)
			best.EventsPerSec = float64(events) / elapsed.Seconds()
			best.Iters = iters
		}
	}
	return best
}

func runScenarios(cfg experiments.Config) error {
	for _, sc := range workload.Scenarios() {
		if _, err := experiments.RunScenario(cfg, sc, experiments.PolicyNames); err != nil {
			return err
		}
	}
	return nil
}

func runFig5(cfg experiments.Config) error {
	data := map[workload.Scenario]*experiments.ScenarioData{}
	for _, sc := range workload.Scenarios() {
		d, err := experiments.RunScenario(cfg, sc, experiments.PolicyNames)
		if err != nil {
			return err
		}
		data[sc] = d
	}
	_, err := experiments.Fig5(data)
	return err
}

func runAblation(cfg experiments.Config) error {
	_, err := experiments.RunAblation(cfg)
	return err
}

func runScaleOut(cfg experiments.Config) error {
	_, err := experiments.ScaleOut(cfg)
	return err
}

func runFleet(cfg experiments.Config) error {
	_, err := experiments.Fleet(cfg, nil)
	return err
}

// gitRev resolves the short hash of HEAD, falling back to "dev" outside a
// git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
