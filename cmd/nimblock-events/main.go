// Command nimblock-events generates randomized test-event sequences, the
// counterpart of the Python generation scripts in the paper's artifact.
// Each event is an application arrival with a batch size, priority level,
// and arrival time; output is JSON consumable by nimblock-sim.
//
// With -spans it instead folds a recorded execution trace (written by
// nimblock-sim -trace-json) into per-application span timelines:
// submit / first-config / first-launch / complete milestones plus every
// reconfiguration, compute, preemption, and recovery segment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nimblock/internal/obs"
	"nimblock/internal/sim"
	"nimblock/internal/trace"
	"nimblock/internal/workload"
)

func main() {
	var (
		scenario = flag.String("scenario", "stress", "congestion scenario: standard, stress, real-time")
		events   = flag.Int("events", workload.EventsPerSequence, "events per sequence")
		seqs     = flag.Int("sequences", 1, "number of sequences to generate")
		seed     = flag.Int64("seed", 1, "random seed")
		batch    = flag.Int("batch", 0, "fixed batch size (0 = random up to 30)")
		prio     = flag.Int("priority", 0, "fixed priority 1/3/9 (0 = random)")
		gapMS    = flag.Float64("gap-ms", 0, "fixed inter-arrival gap in ms (0 = scenario default)")
		spans    = flag.String("spans", "", "fold this trace JSON (from nimblock-sim -trace-json) into span timelines instead of generating events")
	)
	flag.Parse()

	if *spans != "" {
		if err := foldSpans(*spans); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var sc workload.Scenario
	switch *scenario {
	case "standard":
		sc = workload.Standard
	case "stress":
		sc = workload.Stress
	case "real-time", "realtime":
		sc = workload.RealTime
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	spec := workload.Spec{
		Scenario:      sc,
		Events:        *events,
		FixedBatch:    *batch,
		FixedPriority: *prio,
		FixedGap:      sim.Milliseconds(*gapMS),
	}
	var out []workload.Sequence
	for i := 0; i < *seqs; i++ {
		seq := workload.Generate(spec, *seed+int64(i)*1_000_003)
		if err := seq.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out = append(out, seq)
	}
	data, err := workload.MarshalJSON(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// foldSpans reads a recorded trace and emits the span timeline as JSON.
func foldSpans(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lg, err := trace.ParseJSON(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	out, err := json.MarshalIndent(obs.NewSpanBuilder().Replay(lg).Spans(), "", "  ")
	if err != nil {
		return err
	}
	os.Stdout.Write(out)
	fmt.Println()
	return nil
}
