// Command nimblock-report regenerates the core evaluation and writes a
// self-contained HTML report with inline SVG charts: Figure 5 (average
// reductions), Figure 6 (tail response), and Figure 7 (deadline sweeps),
// plus the utilization extension study.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nimblock/internal/experiments"
	"nimblock/internal/svgchart"
	"nimblock/internal/workload"
)

func main() {
	var (
		out   = flag.String("o", "report.html", "output HTML file")
		quick = flag.Bool("quick", false, "reduced stimulus scale")
		seed  = flag.Int64("seed", 0, "override the base random seed")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	html, err := build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, []byte(html), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(html))
}

// build runs the scenario experiments and assembles the document.
func build(cfg experiments.Config) (string, error) {
	data := map[workload.Scenario]*experiments.ScenarioData{}
	for _, sc := range workload.Scenarios() {
		d, err := experiments.RunScenario(cfg, sc, experiments.PolicyNames)
		if err != nil {
			return "", err
		}
		data[sc] = d
	}
	f5, err := experiments.Fig5(data)
	if err != nil {
		return "", err
	}
	f6, err := experiments.Fig6(data)
	if err != nil {
		return "", err
	}
	f7, err := experiments.Fig7(data)
	if err != nil {
		return "", err
	}
	util, err := experiments.UtilizationStudy(cfg)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">` +
		`<title>Nimblock evaluation report</title>` +
		`<style>body{font-family:sans-serif;max-width:900px;margin:24px auto;color:#222}` +
		`h1{font-size:22px}section{margin-bottom:28px}</style></head><body>`)
	b.WriteString(`<h1>Nimblock evaluation report</h1>` +
		`<p>Regenerated from the simulated ZCU106 overlay. See EXPERIMENTS.md for paper-vs-measured analysis.</p>`)

	// Figure 5: grouped bars.
	bar := svgchart.BarChart{
		Title:  "Figure 5: avg response-time reduction vs baseline (higher is better)",
		YLabel: "reduction (x)",
	}
	for _, sc := range workload.Scenarios() {
		bar.Groups = append(bar.Groups, sc.String())
	}
	for _, pol := range experiments.SharingPolicyNames {
		s := svgchart.BarSeries{Name: pol}
		for _, sc := range workload.Scenarios() {
			s.Values = append(s.Values, f5.Reduction[sc][pol])
		}
		bar.Series = append(bar.Series, s)
	}
	svg, serr := bar.SVG(860, 320)
	if err := section(&b, svg, serr); err != nil {
		return "", err
	}

	// Figure 6: tails.
	tail := svgchart.BarChart{
		Title:  "Figure 6: tail response normalized to baseline (lower is better)",
		YLabel: "normalized response",
	}
	for _, sc := range workload.Scenarios() {
		tail.Groups = append(tail.Groups, sc.String()+"-95", sc.String()+"-99")
	}
	for _, pol := range experiments.SharingPolicyNames {
		s := svgchart.BarSeries{Name: pol}
		for _, sc := range workload.Scenarios() {
			s.Values = append(s.Values, f6.Tail[sc][pol][0], f6.Tail[sc][pol][1])
		}
		tail.Series = append(tail.Series, s)
	}
	svg, serr = tail.SVG(860, 320)
	if err := section(&b, svg, serr); err != nil {
		return "", err
	}

	// Figure 7: one line chart per scenario.
	for _, sc := range workload.Scenarios() {
		lc := svgchart.LineChart{
			Title:  fmt.Sprintf("Figure 7 (%s): deadline failure rate vs Ds (high priority)", sc),
			XLabel: "deadline scaling factor Ds",
			YLabel: "violation rate",
		}
		for _, p := range f7.Points[sc][experiments.PolicyNames[0]] {
			lc.X = append(lc.X, p.Ds)
		}
		for _, pol := range experiments.PolicyNames {
			s := svgchart.LineSeries{Name: pol}
			for _, p := range f7.Points[sc][pol] {
				s.Y = append(s.Y, p.ViolationRate)
			}
			lc.Series = append(lc.Series, s)
		}
		svg, serr := lc.SVG(860, 300)
		if err := section(&b, svg, serr); err != nil {
			return "", err
		}
	}

	// Utilization extension.
	ub := svgchart.BarChart{
		Title:  "Extension: slot-time utilization over sequence makespan (stress)",
		YLabel: "utilization",
		Groups: []string{"utilization"},
	}
	for _, pol := range experiments.PolicyNames {
		ub.Series = append(ub.Series, svgchart.BarSeries{Name: pol, Values: []float64{util.Utilization[pol]}})
	}
	svg2, serr2 := ub.SVG(860, 300)
	if err := section(&b, svg2, serr2); err != nil {
		return "", err
	}

	b.WriteString("</body></html>")
	return b.String(), nil
}

// section appends one chart, propagating chart errors.
func section(b *strings.Builder, svg string, err error) error {
	if err != nil {
		return err
	}
	b.WriteString("<section>")
	b.WriteString(svg)
	b.WriteString("</section>")
	return nil
}
