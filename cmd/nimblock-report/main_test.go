package main

import (
	"strings"
	"testing"

	"nimblock/internal/experiments"
)

func TestBuildReport(t *testing.T) {
	cfg := experiments.QuickConfig()
	cfg.Sequences = 2
	cfg.Events = 6
	html, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!DOCTYPE html", "Figure 5", "Figure 6", "Figure 7 (standard)",
		"Figure 7 (stress)", "Figure 7 (real-time)", "utilization", "</html>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if n := strings.Count(html, "<svg"); n != 6 {
		t.Errorf("%d charts, want 6", n)
	}
}
