// Command nimblock-sim replays one event sequence against one scheduling
// algorithm on the simulated ZCU106 overlay and reports per-application
// response times, mirroring the serial-console reports of the paper's
// testbed.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"

	"nimblock/internal/apps"
	"nimblock/internal/experiments"
	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/obs"
	"nimblock/internal/report"
	"nimblock/internal/sim"
	"nimblock/internal/svgchart"
	"nimblock/internal/trace"
	"nimblock/internal/workload"
)

func main() {
	var (
		algo      = flag.String("algo", "Nimblock", "scheduling algorithm: Baseline, FCFS, PREMA, RR, Nimblock[NoPreempt|NoPipe|NoPreemptNoPipe]")
		scenario  = flag.String("scenario", "stress", "congestion scenario when generating events: standard, stress, real-time")
		events    = flag.Int("events", workload.EventsPerSequence, "events to generate")
		seed      = flag.Int64("seed", 1, "random seed for event generation")
		batch     = flag.Int("batch", 0, "fixed batch size (0 = random)")
		in        = flag.String("in", "", "JSON event file from nimblock-events (overrides generation; first sequence used)")
		gantt     = flag.Bool("gantt", false, "render a per-slot Gantt chart")
		dump      = flag.Bool("trace", false, "dump the full execution trace")
		summary   = flag.Bool("summary", false, "print trace-derived per-application aggregates")
		csv       = flag.Bool("csv", false, "emit the result table as CSV")
		ganttSVG  = flag.String("gantt-svg", "", "write an SVG slot-occupancy timeline to this file")
		serve     = flag.String("serve", "", "serve live metrics over HTTP on this address (e.g. :9090); Prometheus text at /metrics, JSON at /metrics.json; blocks after the run until interrupted")
		traceJSON = flag.String("trace-json", "", "write the execution trace as JSON to this file (consumable by nimblock-events -spans)")
		jsonl     = flag.String("jsonl", "", "stream trace events live to this file as JSON Lines")
	)
	flag.Parse()

	seq, err := loadOrGenerate(*in, *scenario, *events, *seed, *batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *algo == "all" {
		if err := compareAll(seq); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	cfg := experiments.DefaultConfig()
	cfg.HV.EnableTrace = *gantt || *dump || *summary || *ganttSVG != "" || *traceJSON != ""

	// Live observability: a metrics registry for -serve and a JSONL
	// stream for -jsonl, fanned out from the trace emission point.
	var sinks []obs.Sink
	var reg *obs.Registry
	if *serve != "" {
		reg = obs.NewRegistry()
		sinks = append(sinks, obs.NewMetrics(reg, cfg.HV.Board.Slots))
	}
	var stream *obs.JSONL
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stream = obs.NewJSONL(f)
		sinks = append(sinks, stream)
	}
	cfg.HV.Observer = obs.Tee(sinks...)

	if *serve != "" {
		go func() {
			if err := http.ListenAndServe(*serve, reg.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	pol, err := experiments.NewPolicy(*algo, cfg.HV.Board)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	eng := sim.NewEngine()
	h, err := hv.New(eng, cfg.HV, pol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, ev := range seq {
		if err := h.Submit(apps.MustGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	results, err := h.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	t := &report.Table{
		Title:  fmt.Sprintf("%s: %d events", pol.Name(), len(results)),
		Header: []string{"#", "App", "Batch", "Prio", "Arrival", "Response", "Wait", "Run", "PR", "Preempts"},
	}
	for _, r := range results {
		t.AddRow(r.AppID, r.App, r.Batch, r.Priority,
			report.FormatSeconds(r.Arrival.Seconds()),
			report.FormatSeconds(r.Response.Seconds()),
			report.FormatSeconds(r.Wait.Seconds()),
			report.FormatSeconds(r.Run.Seconds()),
			report.FormatSeconds(r.Reconfig.Seconds()),
			r.Preemptions)
	}
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.Render())
	}

	resp := metrics.Responses(results)
	fmt.Printf("\nresponse: mean=%.2fs median=%.2fs p95=%.2fs p99=%.2fs\n",
		metrics.Mean(resp), metrics.Median(resp),
		metrics.Percentile(resp, 95), metrics.Percentile(resp, 99))
	preempts := 0
	for _, r := range results {
		preempts += r.Preemptions
	}
	st := h.Board().Stats()
	fmt.Printf("board: %d reconfigurations (%.1fs on the CAP), %d faults, %d preemptions\n",
		st.Reconfigurations, st.ReconfigTime.Seconds(), st.Faults, preempts)

	if *gantt {
		fmt.Println()
		fmt.Print(h.Trace().Gantt(h.Board().NumSlots(), eng.Now(), 100))
	}
	if *dump {
		fmt.Println()
		fmt.Print(h.Trace().Dump())
	}
	if *summary {
		fmt.Println()
		fmt.Print(h.Trace().SummaryTable())
	}
	if *ganttSVG != "" {
		svg, err := ganttFromTrace(h.Trace(), h.Board().NumSlots())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*ganttSVG, []byte(svg), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *ganttSVG)
	}
	if *traceJSON != "" {
		data, err := h.Trace().MarshalJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*traceJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *traceJSON)
	}
	if stream != nil {
		if err := stream.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonl)
	}
	if *serve != "" {
		fmt.Printf("serving metrics on %s (/metrics, /metrics.json); Ctrl-C to exit\n", *serve)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}

// ganttFromTrace converts the execution trace into an SVG timeline:
// reconfiguration windows in grey, per-application compute in colour.
func ganttFromTrace(lg *trace.Log, slots int) (string, error) {
	g := svgchart.Gantt{Title: "slot occupancy", Rows: slots}
	type open struct {
		at    float64
		label string
	}
	reconf := map[int]open{}
	items := map[int]open{}
	for _, e := range lg.Events() {
		at := e.At.Seconds()
		if at > g.End {
			g.End = at
		}
		switch e.Kind {
		case trace.KindReconfigStart:
			reconf[e.Slot] = open{at, e.App}
		case trace.KindReconfigDone:
			if o, ok := reconf[e.Slot]; ok {
				g.Spans = append(g.Spans, svgchart.Span{Row: e.Slot, From: o.at, To: at, Kind: 'R', Label: o.label})
				delete(reconf, e.Slot)
			}
		case trace.KindItemStart:
			items[e.Slot] = open{at, e.App}
		case trace.KindItemDone:
			if o, ok := items[e.Slot]; ok {
				g.Spans = append(g.Spans, svgchart.Span{Row: e.Slot, From: o.at, To: at, Kind: '#', Label: o.label})
				delete(items, e.Slot)
			}
		}
	}
	return g.SVG(1000)
}

// compareAll replays the sequence under every algorithm and prints the
// summary statistics side by side.
func compareAll(seq workload.Sequence) error {
	cfg := experiments.DefaultConfig()
	t := &report.Table{
		Title:  fmt.Sprintf("all algorithms: %d events", len(seq)),
		Header: []string{"Algorithm", "Mean", "Median", "p95", "p99", "Preempts"},
	}
	for _, name := range experiments.PolicyNames {
		results, err := experiments.RunSequence(cfg, name, seq)
		if err != nil {
			return err
		}
		resp := metrics.Responses(results)
		preempts := 0
		for _, r := range results {
			preempts += r.Preemptions
		}
		t.AddRow(name,
			report.FormatSeconds(metrics.Mean(resp)),
			report.FormatSeconds(metrics.Median(resp)),
			report.FormatSeconds(metrics.Percentile(resp, 95)),
			report.FormatSeconds(metrics.Percentile(resp, 99)),
			preempts)
	}
	fmt.Print(t.Render())
	return nil
}

func loadOrGenerate(path, scenario string, events int, seed int64, batch int) (workload.Sequence, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		seqs, err := workload.ParseJSON(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return seqs[0], nil
	}
	var sc workload.Scenario
	switch scenario {
	case "standard":
		sc = workload.Standard
	case "stress":
		sc = workload.Stress
	case "real-time", "realtime":
		sc = workload.RealTime
	default:
		return nil, fmt.Errorf("unknown scenario %q", scenario)
	}
	seq := workload.Generate(workload.Spec{Scenario: sc, Events: events, FixedBatch: batch}, seed)
	return seq, seq.Validate()
}
