package main

import (
	"strings"

	"nimblock/internal/sim"
	"nimblock/internal/trace"
	"os"
	"path/filepath"
	"testing"

	"nimblock/internal/workload"
)

func TestLoadOrGenerateScenarios(t *testing.T) {
	for _, sc := range []string{"standard", "stress", "real-time", "realtime"} {
		seq, err := loadOrGenerate("", sc, 5, 1, 0)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if len(seq) != 5 {
			t.Fatalf("%s: %d events", sc, len(seq))
		}
	}
	if _, err := loadOrGenerate("", "bogus", 5, 1, 0); err == nil {
		t.Fatal("bogus scenario accepted")
	}
}

func TestLoadOrGenerateFromFile(t *testing.T) {
	seqs := []workload.Sequence{workload.Generate(workload.Spec{Scenario: workload.Stress, Events: 3}, 2)}
	data, err := workload.MarshalJSON(seqs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "events.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, err := loadOrGenerate(path, "stress", 99, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3 {
		t.Fatalf("loaded %d events, want 3 from file", len(seq))
	}
	if _, err := loadOrGenerate(filepath.Join(t.TempDir(), "missing.json"), "stress", 1, 1, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCompareAll(t *testing.T) {
	seq := workload.Generate(workload.Spec{Scenario: workload.Stress, Events: 4, FixedBatch: 2}, 3)
	if err := compareAll(seq); err != nil {
		t.Fatal(err)
	}
}

func TestGanttFromTrace(t *testing.T) {
	lg := trace.New()
	sec := func(s float64) sim.Time { return sim.Time(s * 1e6) }
	lg.Add(trace.Event{At: sec(0), Kind: trace.KindReconfigStart, App: "a", Slot: 0, Task: 0, Item: -1})
	lg.Add(trace.Event{At: sec(0.08), Kind: trace.KindReconfigDone, App: "a", Slot: 0, Task: 0, Item: -1})
	lg.Add(trace.Event{At: sec(0.08), Kind: trace.KindItemStart, App: "a", Slot: 0, Task: 0, Item: 0})
	lg.Add(trace.Event{At: sec(1), Kind: trace.KindItemDone, App: "a", Slot: 0, Task: 0, Item: 0})
	svg, err := ganttFromTrace(lg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "slot occupancy") {
		t.Fatalf("bad svg: %.80s", svg)
	}
}
