// Command nimblock-paper regenerates every table and figure from the
// paper's evaluation (Section 5) on the simulated platform and prints the
// same rows and series the paper reports.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"

	"nimblock/internal/experiments"
	"nimblock/internal/obs"
	"nimblock/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: all, table1, table2, table3, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig7ablation, interconnect, scaleout, slotsweep, utilization, optimality, preempt, reconfigsweep, loadsweep, estimates, chaos, overload, checkpoint, failover, hetero, fleet")
		quick      = flag.Bool("quick", false, "reduced scale (2 sequences x 8 events) for fast runs")
		seed       = flag.Int64("seed", 0, "override the base random seed")
		workers    = flag.Int("workers", 0, "worker pool size for independent runs (0: NIMBLOCK_PARALLEL or GOMAXPROCS; 1: serial)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")
		serve      = flag.String("serve", "", "serve live aggregate metrics over HTTP on this address (e.g. :9090) while experiments run; Prometheus text at /metrics, JSON at /metrics.json; blocks after the run until interrupted")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	var reg *obs.Registry
	if *serve != "" {
		// One registry aggregates every simulation the harness fans out;
		// each run gets its own Metrics sink so pairing state stays
		// run-local while the instruments (shared, atomic) accumulate.
		reg = obs.NewRegistry()
		slots := cfg.HV.Board.Slots
		cfg.NewObserver = func() obs.Sink { return obs.NewMetrics(reg, slots) }
		go func() {
			if err := http.ListenAndServe(*serve, reg.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			fail(f.Close())
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		fail(err)
		fail(trace.Start(f))
		defer func() {
			trace.Stop()
			fail(f.Close())
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			fail(err)
			runtime.GC() // settle allocations so the profile reflects live heap
			fail(pprof.WriteHeapProfile(f))
			fail(f.Close())
		}()
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string) bool { return all || want[name] }

	if run("table1") {
		fmt.Println(experiments.Table1())
	}
	if run("table2") {
		fmt.Println(experiments.Table2())
	}
	if run("table3") {
		t3, err := experiments.Table3(cfg)
		fail(err)
		fmt.Println(t3.Render())
	}

	var data map[workload.Scenario]*experiments.ScenarioData
	needScenarios := run("fig5") || run("fig6") || run("fig7") || run("fig8")
	if needScenarios {
		data = map[workload.Scenario]*experiments.ScenarioData{}
		for _, sc := range workload.Scenarios() {
			d, err := experiments.RunScenario(cfg, sc, experiments.PolicyNames)
			fail(err)
			data[sc] = d
		}
	}
	if run("fig5") {
		f, err := experiments.Fig5(data)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("fig6") {
		f, err := experiments.Fig6(data)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("fig7") {
		f, err := experiments.Fig7(data)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("fig8") {
		f, err := experiments.Fig8(data[workload.Standard])
		fail(err)
		fmt.Println(f.Render())
	}

	if run("estimates") {
		f, err := experiments.EstimateAccuracy(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("loadsweep") {
		f, err := experiments.LoadSweep(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("reconfigsweep") {
		f, err := experiments.ReconfigSweep(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("preempt") {
		f, err := experiments.PreemptStudy(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("optimality") {
		f, err := experiments.Optimality(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("chaos") {
		f, err := experiments.Chaos(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("checkpoint") {
		f, err := experiments.CheckpointAblation(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("failover") {
		f, err := experiments.Failover(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("hetero") {
		f, err := experiments.Hetero(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("fleet") {
		// The registry (when -serve is set) exposes the largest cell's
		// per-shard routing and pending-depth instruments.
		f, err := experiments.Fleet(cfg, reg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("overload") {
		// The shared registry (when -serve is set) doubles as the live
		// admission side-channel: admit_* counters and queue gauges.
		f, err := experiments.Overload(cfg, reg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("utilization") {
		f, err := experiments.UtilizationStudy(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("slotsweep") {
		f, err := experiments.SlotSweep(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("scaleout") {
		f, err := experiments.ScaleOut(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("interconnect") {
		f, err := experiments.InterconnectStudy(cfg)
		fail(err)
		fmt.Println(f.Render())
	}
	if run("fig7ablation") {
		f, err := experiments.DeadlineAblation(cfg)
		fail(err)
		fmt.Println(f.Render())
		fmt.Println(f.Summary())
		fmt.Println()
	}

	if run("fig9") || run("fig10") || run("fig11") {
		ab, err := experiments.RunAblation(cfg)
		fail(err)
		if run("fig9") {
			f, err := experiments.Fig9(ab)
			fail(err)
			fmt.Println(f.Render())
		}
		if run("fig10") {
			f, err := experiments.Fig10(ab)
			fail(err)
			fmt.Println(f.Render())
		}
		if run("fig11") {
			f, err := experiments.Fig11(ab)
			fail(err)
			fmt.Println(f.Render())
		}
	}

	if *serve != "" {
		fmt.Printf("serving metrics on %s (/metrics, /metrics.json); Ctrl-C to exit\n", *serve)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
