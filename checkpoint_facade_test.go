package nimblock

import (
	"testing"
	"time"
)

// ckptFacadeSystem builds a system under a slow+hang fault plan with
// the watchdog armed — the scenario where resuming from checkpoints
// (instead of re-executing killed items) pays.
func ckptFacadeSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	cfg.FaultPlan = "seed 7\nslow prob=0.6 factor=4 until=120s\n"
	cfg.WatchdogFactor = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{LeNet, OpticalFlow, ImageCompression, Rendering3D} {
		app, err := Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Submit(app, 6, PriorityMedium, time.Duration(i)*200*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestCheckpointFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Checkpoint = CheckpointConfig{Enabled: true, Period: 50 * time.Millisecond}
	sys := ckptFacadeSystem(t, cfg)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rec := sys.Recovery()
	if rec.WatchdogKills == 0 {
		t.Fatal("plan killed nothing; the scenario tests nothing")
	}
	if rec.ResumedItems == 0 || rec.SavedWork <= 0 || rec.CheckpointSaves == 0 {
		t.Fatalf("checkpointing reported no resumes: %+v", rec)
	}
	if rec.CheckpointOverhead <= 0 {
		t.Fatal("state moved through the configuration port for free")
	}

	// Same seed and workload without checkpointing: strictly more work
	// is wasted, and no checkpoint stats appear.
	plain := ckptFacadeSystem(t, DefaultConfig())
	if _, err := plain.Run(); err != nil {
		t.Fatal(err)
	}
	prec := plain.Recovery()
	if prec.ResumedItems != 0 || prec.SavedWork != 0 || prec.CheckpointOverhead != 0 {
		t.Fatalf("non-checkpointed run reports checkpoint stats: %+v", prec)
	}
	if rec.WastedWork >= prec.WastedWork {
		t.Fatalf("checkpointing did not reduce wasted work: %v with, %v without", rec.WastedWork, prec.WastedWork)
	}
}

func TestCheckpointAlgorithmOnFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = AlgoNimblockCheckpoint
	cfg.Checkpoint = CheckpointConfig{Enabled: true}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Algorithm(); got != "NimblockCheckpoint" {
		t.Fatalf("algorithm %q", got)
	}
	app, err := Benchmark(LeNet)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Submit(app, 4, PriorityHigh, 0); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Response <= 0 {
		t.Fatalf("unexpected results %+v", res)
	}
}

func TestCheckpointConflictsWithStudyMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Checkpoint = CheckpointConfig{Enabled: true}
	cfg.CheckpointPreemption = time.Millisecond
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("combining Checkpoint with CheckpointPreemption accepted")
	}
}
