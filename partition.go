package nimblock

import (
	"time"

	"nimblock/internal/fpga"
	"nimblock/internal/partition"
	"nimblock/internal/sim"
)

// OpID identifies an operation within an OpBuilder.
type OpID int

// ResourceDemand is the synthesis footprint of one operation, as
// fractions of one slot's capacity (0..1 per resource class). The
// partitioner scales these onto the overlay's actual slot resources.
type ResourceDemand struct {
	// LUTs is the dominant sizing fraction; the remaining classes
	// default to the same fraction when zero.
	LUTs  float64
	DSPs  float64
	BRAMs float64
}

// OpBuilder constructs a fine-grained operation graph for automatic
// partitioning into slot-sized tasks — the compilation-flow step the
// paper performs manually for its benchmarks.
type OpBuilder struct {
	b *partition.Builder
}

// NewOpApp starts building an operation-level application.
func NewOpApp(name string) *OpBuilder {
	return &OpBuilder{b: partition.NewBuilder(name)}
}

// scaled converts fractional demand onto the slot resource vector.
func scaled(d ResourceDemand) fpga.Resources {
	lut := d.LUTs
	dsp := d.DSPs
	if dsp == 0 {
		dsp = lut
	}
	bram := d.BRAMs
	if bram == 0 {
		bram = lut
	}
	s := fpga.SlotResources
	f := func(v int, frac float64) int { return int(float64(v) * frac) }
	return fpga.Resources{
		DSP:    f(s.DSP, dsp),
		LUT:    f(s.LUT, lut),
		FF:     f(s.FF, lut),
		Carry:  f(s.Carry, lut),
		RAMB18: f(s.RAMB18, bram),
		RAMB36: f(s.RAMB36, bram),
		IOBuf:  f(s.IOBuf, lut),
	}
}

// AddOp appends an operation with its per-item latency and resource
// demand, returning its ID.
func (ob *OpBuilder) AddOp(name string, latency time.Duration, demand ResourceDemand) OpID {
	return OpID(ob.b.AddOp(partition.Op{
		Name:    name,
		Latency: sim.FromStd(latency),
		Res:     scaled(demand),
	}))
}

// AddDependency records a data dependency between operations.
func (ob *OpBuilder) AddDependency(from, to OpID) *OpBuilder {
	ob.b.AddEdge(int(from), int(to))
	return ob
}

// Chain links operations in sequence.
func (ob *OpBuilder) Chain(ids ...OpID) *OpBuilder {
	for i := 1; i < len(ids); i++ {
		ob.AddDependency(ids[i-1], ids[i])
	}
	return ob
}

// PartitionInfo describes the outcome of automatic partitioning.
type PartitionInfo struct {
	// Tasks is the number of slot-sized tasks produced.
	Tasks int
	// OpsPerTask lists member-operation counts per task.
	OpsPerTask []int
	// Utilization is the mean fraction of slot LUTs used per task.
	Utilization float64
}

// Partition clusters the operations into slot-sized tasks and returns
// the submittable application plus packing statistics.
func (ob *OpBuilder) Partition() (*Application, PartitionInfo, error) {
	g, err := ob.b.Build()
	if err != nil {
		return nil, PartitionInfo{}, err
	}
	r, err := partition.Partition(g, fpga.SlotResources)
	if err != nil {
		return nil, PartitionInfo{}, err
	}
	info := PartitionInfo{
		Tasks:       r.Graph.NumTasks(),
		Utilization: r.Utilization,
	}
	for _, members := range r.TaskOps {
		info.OpsPerTask = append(info.OpsPerTask, len(members))
	}
	return &Application{graph: r.Graph}, info, nil
}
