package nimblock

import (
	"strings"
	"testing"
	"time"
)

func TestParseBoardSpec(t *testing.T) {
	b, err := ParseBoardSpec("slots=8 scale=1.25 static=2.5 active=1.5")
	if err != nil {
		t.Fatal(err)
	}
	if b.Slots != 8 || b.LatencyScale != 1.25 || b.StaticWattsPerSlot != 2.5 || b.ActiveWattsPerSlot != 1.5 {
		t.Fatalf("parsed %+v", b)
	}
	if got := b.String(); got != "slots=8 scale=1.25 static=2.5 active=1.5" {
		t.Fatalf("round-trip %q", got)
	}
	for _, bad := range []string{"", "slots=0", "slots=100000000000", "slots=4 watts=3", "slots=4 scale=-1", "slots=4 slots=5"} {
		if _, err := ParseBoardSpec(bad); err == nil {
			t.Errorf("ParseBoardSpec(%q) accepted", bad)
		}
	}
}

func TestAlgorithmsIncludeEnergy(t *testing.T) {
	for _, a := range Algorithms() {
		if a == AlgoNimblockEnergy {
			return
		}
	}
	t.Fatal("AlgoNimblockEnergy missing from Algorithms()")
}

// A system with a powered board reports a positive, split energy total;
// without a power model every stat is zero.
func TestSystemEnergyAccounting(t *testing.T) {
	run := func(board *BoardSpec) EnergyStats {
		cfg := DefaultConfig()
		cfg.Algorithm = AlgoNimblockEnergy
		cfg.Board = board
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		app, _ := Benchmark(LeNet)
		if err := sys.SubmitTenant(app, 4, PriorityMedium, 0, "tenant-a", 1); err != nil {
			t.Fatal(err)
		}
		if err := sys.SubmitTenant(app, 4, PriorityMedium, 0, "tenant-b", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.Energy()
	}

	es := run(&BoardSpec{Slots: 6, StaticWattsPerSlot: 2, ActiveWattsPerSlot: 1})
	if es.StaticJoules <= 0 || es.ActiveJoules <= 0 || es.TotalJoules() != es.StaticJoules+es.ActiveJoules {
		t.Fatalf("powered board energy %+v", es)
	}
	// Static joules must be priced at the makespan (seconds of work),
	// not the ~55-hour horizon the clock ends Run at: the workload
	// here takes well under a minute, so 6 slots x 2 W bounds static
	// energy under 720 J (horizon pricing would exceed 2e6 J).
	if es.StaticJoules > 720 {
		t.Fatalf("static joules %v priced over the idle horizon tail", es.StaticJoules)
	}
	if es.OccupiedSlotSeconds <= 0 || es.UsableSlotSeconds < es.OccupiedSlotSeconds {
		t.Fatalf("slot-time integrals %+v", es)
	}

	// Without a power model the joule fields are zero; the slot-time
	// integrals still accrue (they are free int64 counters).
	if es := run(nil); es.TotalJoules() != 0 || es.OccupiedSlotSeconds <= 0 {
		t.Fatalf("unpowered board energy %+v, want zero joules", es)
	}
}

// SubmitTenant credits service to each tenant, and equal tenants with
// identical work end near-perfect fairness once everything retires.
func TestSystemTenantFairness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = AlgoNimblockEnergy
	cfg.Board = &BoardSpec{Slots: 6}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := Benchmark(LeNet)
	for i := 0; i < 6; i++ {
		tenant := "tenant-a"
		if i%2 == 1 {
			tenant = "tenant-b"
		}
		if err := sys.SubmitTenant(app, 3, PriorityMedium, time.Duration(i)*50*time.Millisecond, tenant, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	svc := sys.TenantServices()
	if svc["tenant-a"] <= 0 || svc["tenant-b"] <= 0 {
		t.Fatalf("tenant services %v", svc)
	}
	if j := sys.FairnessIndex(); j < 0.99 || j > 1 {
		t.Fatalf("fairness %v over %v, want ~1", j, svc)
	}
}

// Config.Board must survive validation: a meaningless spec fails
// NewSystem instead of silently misconfiguring the board.
func TestSystemBoardSpecValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Board = &BoardSpec{Slots: 0}
	if _, err := NewSystem(cfg); err == nil || !strings.Contains(err.Error(), "slot") {
		t.Fatalf("invalid board spec error = %v", err)
	}
}

// A heterogeneous cluster: per-board specs, hetero-aware dispatch,
// weighted tenants, and fleet-level energy.
func TestClusterHeterogeneousFleet(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Algorithm = AlgoNimblockEnergy
	cfg.Boards = 2
	cfg.Dispatch = DispatchHeteroAware
	cfg.BoardSpecs = []*BoardSpec{
		{Slots: 8, StaticWattsPerSlot: 2, ActiveWattsPerSlot: 1},
		{Slots: 4, LatencyScale: 2, StaticWattsPerSlot: 2, ActiveWattsPerSlot: 1},
	}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := Benchmark(LeNet)
	for i := 0; i < 8; i++ {
		tenant := "alpha"
		if i%2 == 1 {
			tenant = "beta"
		}
		err := cl.SubmitWith(app, 3, PriorityMedium, time.Duration(i)*100*time.Millisecond,
			SubmitOptions{Tenant: tenant, Weight: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("%d results", len(res))
	}
	if es := cl.Energy(); es.StaticJoules <= 0 || es.ActiveJoules <= 0 {
		t.Fatalf("fleet energy %+v", es)
	}
	svc := cl.TenantServices()
	if svc["alpha"] <= 0 || svc["beta"] <= 0 {
		t.Fatalf("tenant services %v", svc)
	}
}

// The serverless front-end carries the same heterogeneity surface:
// per-board specs, weighted function tenants, and fleet energy.
func TestPlatformHeterogeneousFleet(t *testing.T) {
	cfg := DefaultServerlessConfig()
	cfg.Algorithm = AlgoNimblockEnergy
	cfg.Boards = 2
	cfg.BoardSpecs = []*BoardSpec{
		{Slots: 8, StaticWattsPerSlot: 2, ActiveWattsPerSlot: 1},
		{Slots: 4, LatencyScale: 2, StaticWattsPerSlot: 2, ActiveWattsPerSlot: 1},
	}
	pl, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := Benchmark(LeNet)
	if err := pl.RegisterWith("fa", app, PriorityMedium, FunctionOptions{Tenant: "alpha", Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if err := pl.RegisterWith("fb", app, PriorityMedium, FunctionOptions{Tenant: "beta", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		fn := "fa"
		if i%2 == 1 {
			fn = "fb"
		}
		if err := pl.Invoke(fn, 2, time.Duration(i)*100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	if es := pl.Energy(); es.StaticJoules <= 0 || es.ActiveJoules <= 0 {
		t.Fatalf("platform energy %+v", es)
	}
	svc := pl.TenantServices()
	if svc["alpha"] <= 0 || svc["beta"] <= 0 {
		t.Fatalf("tenant services %v", svc)
	}

	cfg.BoardSpecs = cfg.BoardSpecs[:1]
	if _, err := NewPlatform(cfg); err == nil || !strings.Contains(err.Error(), "board specs") {
		t.Fatalf("mismatched specs error = %v", err)
	}
}

func TestClusterBoardSpecsValidation(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Boards = 3
	cfg.BoardSpecs = []*BoardSpec{{Slots: 4}}
	if _, err := NewCluster(cfg); err == nil || !strings.Contains(err.Error(), "board specs") {
		t.Fatalf("mismatched specs error = %v", err)
	}
	cfg.BoardSpecs = []*BoardSpec{{Slots: 4}, {Slots: -1}, {Slots: 4}}
	if _, err := NewCluster(cfg); err == nil || !strings.Contains(err.Error(), "board 1") {
		t.Fatalf("invalid per-board spec error = %v", err)
	}
}
