package nimblock

import (
	"time"

	"nimblock/internal/admit"
	"nimblock/internal/sim"
)

// AdmissionConfig bounds what a Cluster or Platform accepts. The zero
// value of every field disables that policy; a nil *AdmissionConfig on
// ClusterConfig/ServerlessConfig disables admission control entirely
// (everything is accepted, the pre-admission behavior).
type AdmissionConfig struct {
	// Capacity bounds admitted-but-unfinished submissions. When the
	// queue is full, the lowest-priority, newest waiting submission
	// (possibly the arrival itself) is shed. 0 = unbounded.
	Capacity int
	// MaxInFlight bounds submissions dispatched to boards concurrently;
	// admitted work beyond it waits in the admission queue where it can
	// still be displaced by higher-priority arrivals. 0 = dispatch
	// immediately.
	MaxInFlight int
	// DeadlineFactor arms deadline admission for work without an
	// explicit SLO: the implied budget is DeadlineFactor x the
	// submission's single-slot estimate. 0 = no implied deadline.
	DeadlineFactor float64
	// Quotas hard-caps concurrently admitted submissions per tenant.
	Quotas map[string]int
	// Weights sets tenants' relative shares of a full admission queue
	// (unlisted tenants weigh 1); over-share tenants are shed first.
	Weights map[string]float64
}

// internal converts the facade config for internal front-ends.
func (a *AdmissionConfig) internal() *admit.Config {
	if a == nil {
		return nil
	}
	return &admit.Config{
		Capacity:       a.Capacity,
		MaxInFlight:    a.MaxInFlight,
		DeadlineFactor: a.DeadlineFactor,
		Quotas:         a.Quotas,
		Weights:        a.Weights,
	}
}

// AdmissionStats reports an admission controller's lifetime counters.
// Conservation: Offered == Admitted + Shed - Evicted + RejectedDeadline
// + RejectedQuota, where Shed includes the Evicted (admitted first,
// displaced later).
type AdmissionStats struct {
	Offered          int
	Admitted         int
	Shed             int
	Evicted          int
	RejectedDeadline int
	RejectedQuota    int
	Dispatched       int
	Completed        int
	PeakQueueDepth   int
	PeakInFlight     int
}

func admissionStats(s admit.Stats) AdmissionStats {
	return AdmissionStats{
		Offered:          s.Offered,
		Admitted:         s.Admitted,
		Shed:             s.Shed,
		Evicted:          s.Evicted,
		RejectedDeadline: s.RejectedDeadline,
		RejectedQuota:    s.RejectedQuota,
		Dispatched:       s.Dispatched,
		Completed:        s.Completed,
		PeakQueueDepth:   s.PeakQueueDepth,
		PeakInFlight:     s.PeakInFlight,
	}
}

// SubmitOptions carries a submission's admission attributes.
type SubmitOptions struct {
	// Tenant attributes the submission for quotas and fair sharing.
	Tenant string
	// SLO is the latency budget for deadline admission; 0 falls back to
	// AdmissionConfig.DeadlineFactor.
	SLO time.Duration
	// Weight is the tenant's service weight for fairness-aware
	// scheduling (AlgoNimblockEnergy); <= 0 means 1.
	Weight float64
}

func (o SubmitOptions) sloSim() sim.Duration { return sim.FromStd(o.SLO) }
